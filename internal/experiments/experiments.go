// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §6 for the experiment index). Each Fig*/Table*
// function returns a plain-text rendering of the corresponding artifact;
// cmd/pimexperiments writes them to disk and bench_test.go wraps them in
// testing.B benchmarks.
package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pimeval/benchmarks/suite"
	"pimeval/internal/area"
	"pimeval/internal/cluster"
	"pimeval/internal/dram"
	"pimeval/internal/fulcrum"
	"pimeval/internal/upmem"
	"pimeval/pim"

	_ "pimeval/benchmarks/all" // register the full PIMbench lineup
)

// targetLabel maps architectures to the paper's series names.
func targetLabel(t pim.Target) string {
	switch t {
	case pim.BitSerial:
		return "Bit-Serial"
	case pim.Fulcrum:
		return "Fulcrum"
	default:
		return "Bank-level"
	}
}

// Workers bounds the functional execution engine's worker pool for every
// experiment run dispatched by this package (0 = NumCPU, 1 = serial; see
// pim.Config.Workers). The paper-scale artifacts are model-only, where the
// knob only matters if a study is re-run with Functional inputs, but
// cmd/pimexperiments and cmd/pimsweep thread their -workers flag here so
// the whole pipeline honors one setting.
var Workers int

// Faults, when non-nil, enables the fault-injection stage (and optional
// SEC-DED ECC model) on every experiment run dispatched by this package.
// cmd/pimsweep and cmd/pimexperiments thread their -faults/-fault-seed
// flags here, so resilience studies reuse the paper's experiment drivers
// unchanged. Runs execute through the suite's resilient path when set.
var Faults *pim.FaultConfig

// Retries bounds the retry budget suite.RunResilient gets per benchmark
// when Faults is set.
var Retries = 2

// RecordDir, when non-empty, streams the command stream of every sweepOps
// point into a per-point file under this directory (created if needed) as
// the operations dispatch — paper-scale model-only sweeps record without
// materializing their traces. cmd/pimsweep threads its -record-dir flag
// here.
var RecordDir string

// RecordFormat selects the RecordDir encoding: "bin" (default) or "json".
var RecordFormat string

// recordFormat resolves RecordFormat to a stream format.
func recordFormat() (pim.StreamFormat, error) {
	if RecordFormat == "" {
		return pim.StreamBinary, nil
	}
	return pim.ParseStreamFormat(RecordFormat)
}

// RunSuite executes every benchmark at paper scale (model-only) on the
// given target and rank count, returning results in registry order. With
// Faults set, benchmarks run through the resilient path and degraded
// partial results are kept rather than aborting the sweep.
func RunSuite(target pim.Target, ranks int) ([]suite.Result, error) {
	var out []suite.Result
	for _, b := range suite.All() {
		cfg := suite.Config{Target: target, Ranks: ranks, Workers: Workers, Faults: Faults, Retries: Retries}
		if Faults != nil {
			out = append(out, suite.RunResilient(b, cfg))
			continue
		}
		res, err := b.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s on %v: %w", b.Info().Name, target, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// SuiteAllTargets runs the whole suite on all three architectures.
func SuiteAllTargets(ranks int) (map[pim.Target][]suite.Result, error) {
	out := make(map[pim.Target][]suite.Result, 3)
	for _, t := range pim.AllTargets {
		rs, err := RunSuite(t, ranks)
		if err != nil {
			return nil, err
		}
		out[t] = rs
	}
	return out, nil
}

// gmean returns the geometric mean of positive values.
func gmean(vals []float64) float64 {
	var s float64
	var n int
	for _, v := range vals {
		if v > 0 {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Table1 renders the PIMbench suite listing (paper Table I).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: PIMbench Suite\n")
	fmt.Fprintf(&b, "%-14s %-20s %-12s %-10s %s\n", "Name", "Domain", "Access", "Execution", "Input")
	for _, bench := range suite.All() {
		info := bench.Info()
		access := ""
		if info.Access.Sequential {
			access += "seq"
		}
		if info.Access.Random {
			if access != "" {
				access += "+"
			}
			access += "rand"
		}
		exec := "PIM"
		if info.HostPhase {
			exec = "PIM+Host"
		}
		fmt.Fprintf(&b, "%-14s %-20s %-12s %-10s %s\n", info.Name, info.Domain, access, exec, info.PaperInput)
	}
	return b.String()
}

// Table2 renders the evaluated configurations (paper Table II).
func Table2() string {
	var b strings.Builder
	mod := dram.DDR4(32)
	g := mod.Geometry
	fmt.Fprintln(&b, "Table II: Configuration of the Evaluated Architectures")
	fmt.Fprintln(&b, "CPU        : AMD EPYC 9124 16-core @ 3.71GHz, 200W TDP, peak memory BW 460.8GB/s (roofline model)")
	fmt.Fprintln(&b, "GPU        : NVIDIA A100, 300W TDP, peak memory BW 1,935GB/s, 19.5 TFLOPs FP32 (roofline model)")
	base := fmt.Sprintf("DDR4, %d ranks, %d banks/rank, %d subarrays/bank, %d-bit local row buffers",
		g.Ranks, g.BanksPerRank, g.SubarraysPerBank, g.ColsPerRow)
	fmt.Fprintf(&b, "Bit-serial : %s; bit-serial PE per sense amplifier, 4 registers, move/set/and/xnor/mux\n", base)
	fmt.Fprintf(&b, "Fulcrum    : %s; 32-bit 167MHz ALU + three row-wide walkers per two subarrays\n", base)
	fmt.Fprintf(&b, "Bank-level : %s; %d-bit GDL, 128-bit Fulcrum-style PE + walkers per bank\n", base, g.GDLWidthBits)
	fmt.Fprintf(&b, "Timing     : row read %.1fns, row write %.1fns, tCCD %.1fns, rank BW %.1fGB/s\n",
		mod.Timing.RowReadNS, mod.Timing.RowWriteNS, mod.Timing.TCCDNS, mod.RankBandwidthGBs)
	return b.String()
}

// Fig1 runs the suite once (any architecture exposes the same op mix) and
// renders the benchmark-diversity dendrogram.
func Fig1() (string, error) {
	results, err := RunSuite(pim.BitSerial, 32)
	if err != nil {
		return "", err
	}
	var feats [][]float64
	var labels []string
	benches := suite.All()
	for i, res := range results {
		feats = append(feats, suite.Features(benches[i].Info(), res))
		labels = append(labels, res.Benchmark)
	}
	std := cluster.Standardize(feats)
	proj, err := cluster.PCA(std, 6)
	if err != nil {
		return "", err
	}
	dg, err := cluster.Agglomerate(proj, labels)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 1: PIMbench diversity dendrogram (PCA + average-linkage clustering)")
	b.WriteString(dg.Render())
	fmt.Fprintln(&b, "\nMerge order (distance):")
	for _, m := range dg.Merges {
		fmt.Fprintf(&b, "  %v + %v at %.4f\n", nodeName(dg, m.A), nodeName(dg, m.B), m.Distance)
	}
	return b.String(), nil
}

func nodeName(dg *cluster.Dendrogram, id int) string {
	if id < len(dg.Labels) {
		return dg.Labels[id]
	}
	return fmt.Sprintf("cluster#%d", id-len(dg.Labels))
}

// SweepPoint is one cell of the Figure 6 sensitivity analysis.
type SweepPoint struct {
	Target    pim.Target
	Op        string
	Param     int // column count or bank count
	LatencyMS float64
}

// sweepOps measures the four primitive operations of Figure 6 on 256M
// int32 elements (kernel only, no data movement), with one geometry knob
// swept. Eight ranks give the narrowest geometries enough capacity for the
// three 256M-element operands.
func sweepOps(mutate func(*suite.Config, int), params []int) ([]SweepPoint, error) {
	const n = 256 << 20
	var out []SweepPoint
	for _, tgt := range pim.AllTargets {
		for _, p := range params {
			cfg := pim.Config{Target: tgt, Ranks: 8, Faults: Faults}
			sc := suite.Config{Target: tgt, Ranks: 8}
			mutate(&sc, p)
			cfg.BanksPerRank = sc.BanksPerRank
			cfg.ColsPerRow = sc.ColsPerRow
			dev, err := pim.NewDevice(cfg)
			if err != nil {
				return nil, err
			}
			var streamFile *os.File
			if RecordDir != "" {
				format, err := recordFormat()
				if err != nil {
					return nil, err
				}
				if err := os.MkdirAll(RecordDir, 0o755); err != nil {
					return nil, err
				}
				name := fmt.Sprintf("sweep_%s_%d.%s", tgt, p, format)
				if streamFile, err = os.Create(filepath.Join(RecordDir, name)); err != nil {
					return nil, err
				}
				if err := dev.RecordStreamTo(streamFile, format); err != nil {
					streamFile.Close()
					return nil, err
				}
			}
			a, err := dev.Alloc(n, pim.Int32)
			if err != nil {
				return nil, err
			}
			bo, err := dev.AllocAssociated(a)
			if err != nil {
				return nil, err
			}
			dst, err := dev.AllocAssociated(a)
			if err != nil {
				return nil, err
			}
			ops := []struct {
				name string
				run  func() error
			}{
				{"Add", func() error { return dev.Add(a, bo, dst) }},
				{"Mul", func() error { return dev.Mul(a, bo, dst) }},
				{"Reduction", func() error { _, err := dev.RedSum(a); return err }},
				{"PopCount", func() error { return dev.PopCount(a, dst) }},
			}
			for _, op := range ops {
				dev.ResetStats()
				if err := op.run(); err != nil {
					return nil, err
				}
				out = append(out, SweepPoint{
					Target:    tgt,
					Op:        op.name,
					Param:     p,
					LatencyMS: dev.Metrics().KernelMS,
				})
			}
			if streamFile != nil {
				err := dev.FinishRecording()
				if cerr := streamFile.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// Fig6Cols runs the #columns sensitivity sweep (Figure 6a).
func Fig6Cols() ([]SweepPoint, error) {
	return sweepOps(func(c *suite.Config, p int) { c.ColsPerRow = p }, []int{1024, 2048, 4096, 8192})
}

// Fig6Banks runs the #banks sensitivity sweep (Figure 6b).
func Fig6Banks() ([]SweepPoint, error) {
	return sweepOps(func(c *suite.Config, p int) { c.BanksPerRank = p }, []int{16, 32, 64, 128})
}

// RenderSweep formats sweep points as the Figure 6 latency table.
func RenderSweep(title, param string, pts []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-11s %-10s %8s %14s\n", "Arch", "Op", param, "Latency(ms)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-11s %-10s %8d %14.4f\n", targetLabel(p.Target), p.Op, p.Param, p.LatencyMS)
	}
	return b.String()
}

// Fig7 renders the runtime-breakdown table (data movement / host / kernel
// percentages at 32 ranks).
func Fig7(results map[pim.Target][]suite.Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 7: runtime breakdown (%) at 32 ranks")
	fmt.Fprintf(&b, "%-11s %-14s %10s %8s %8s\n", "Arch", "Benchmark", "DataMove", "Host", "Kernel")
	for _, tgt := range pim.AllTargets {
		for _, r := range results[tgt] {
			total := r.Metrics.TotalMS()
			if total == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-11s %-14s %9.1f%% %7.1f%% %7.1f%%\n",
				targetLabel(tgt), r.Benchmark,
				100*r.Metrics.CopyMS/total, 100*r.Metrics.HostMS/total, 100*r.Metrics.KernelMS/total)
		}
	}
	return b.String()
}

// Fig7Energy renders the energy-breakdown counterpart of Figure 7 — the
// paper states "the energy breakdown exhibits similar behavior and is not
// shown"; this artifact shows it.
func Fig7Energy(results map[pim.Target][]suite.Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 7 (energy counterpart): energy breakdown (%) at 32 ranks")
	fmt.Fprintf(&b, "%-11s %-14s %10s %8s %8s\n", "Arch", "Benchmark", "DataMove", "Host", "Kernel")
	for _, tgt := range pim.AllTargets {
		for _, r := range results[tgt] {
			m := r.Metrics
			total := m.TotalMJ()
			if total == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-11s %-14s %9.1f%% %7.1f%% %7.1f%%\n",
				targetLabel(tgt), r.Benchmark,
				100*m.CopyMJ/total, 100*m.HostMJ/total, 100*m.KernelMJ/total)
		}
	}
	return b.String()
}

// Fig8 renders the operation-frequency distribution per benchmark.
func Fig8(results []suite.Result) string {
	keys := suite.FeatureMixKeys()
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 8: PIM operation frequency distribution (% of total ops)")
	fmt.Fprintf(&b, "%-14s", "Benchmark")
	for _, k := range keys {
		fmt.Fprintf(&b, " %9s", k)
	}
	fmt.Fprintln(&b)
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s", r.Benchmark)
		for _, k := range keys {
			fmt.Fprintf(&b, " %8.1f%%", 100*r.OpMix[k])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig9 renders the speedup-over-CPU table with the paper's two series.
func Fig9(results map[pim.Target][]suite.Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 9: speedup over CPU baseline at 32 ranks")
	fmt.Fprintf(&b, "%-11s %-14s %16s %12s\n", "Arch", "Benchmark", "Kernel+DataMove", "Kernel")
	for _, tgt := range pim.AllTargets {
		var withDMs, kernels []float64
		for _, r := range results[tgt] {
			w, k := r.SpeedupCPU()
			withDMs = append(withDMs, w)
			kernels = append(kernels, k)
			fmt.Fprintf(&b, "%-11s %-14s %16.3f %12.3f\n", targetLabel(tgt), r.Benchmark, w, k)
		}
		fmt.Fprintf(&b, "%-11s %-14s %16.3f %12.3f\n", targetLabel(tgt), "Gmean", gmean(withDMs), gmean(kernels))
	}
	return b.String()
}

// Fig10a renders the speedup-over-GPU table.
func Fig10a(results map[pim.Target][]suite.Result) string {
	return renderSingleSeries("Figure 10a: speedup over GPU baseline (transfers factored out)", results,
		func(r suite.Result) float64 { return r.SpeedupGPU() })
}

// Fig10b renders the energy-reduction-vs-GPU table.
func Fig10b(results map[pim.Target][]suite.Result) string {
	return renderSingleSeries("Figure 10b: energy reduction vs GPU (idle energy factored out)", results,
		func(r suite.Result) float64 { return r.EnergyReductionGPU() })
}

// Fig11 renders the energy-reduction-vs-CPU table.
func Fig11(results map[pim.Target][]suite.Result) string {
	return renderSingleSeries("Figure 11: energy reduction vs CPU", results,
		func(r suite.Result) float64 { return r.EnergyReductionCPU() })
}

func renderSingleSeries(title string, results map[pim.Target][]suite.Result, f func(suite.Result) float64) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-11s %-14s %12s\n", "Arch", "Benchmark", "Factor")
	for _, tgt := range pim.AllTargets {
		var vals []float64
		for _, r := range results[tgt] {
			v := f(r)
			vals = append(vals, v)
			fmt.Fprintf(&b, "%-11s %-14s %12.4f\n", targetLabel(tgt), r.Benchmark, v)
		}
		fmt.Fprintf(&b, "%-11s %-14s %12.4f\n", targetLabel(tgt), "Gmean", gmean(vals))
	}
	return b.String()
}

// kernelHostMS is the Figure 12/13 metric: execution excluding data movement.
func kernelHostMS(r suite.Result) float64 { return r.Metrics.KernelMS + r.Metrics.HostMS }

// fig12Sizes caps the two largest inputs so they fit the 4-rank module;
// the same size is used at every rank count so ratios stay self-relative.
var fig12Sizes = map[string]int64{
	"vecadd": 1 << 30,
	"linreg": 1 << 30,
	"vgg13":  112, // input image edge: quarter-size activations fit 4 ranks
	"vgg16":  112,
	"vgg19":  112,
}

// Fig12 renders rank scaling: speedup over 4 ranks at 8/16/32 ranks,
// kernel+host only, capacity scaling with ranks.
func Fig12() (string, error) {
	ranksList := []int{4, 8, 16, 32}
	byRank := make(map[int]map[pim.Target][]suite.Result, len(ranksList))
	for _, ranks := range ranksList {
		rs := make(map[pim.Target][]suite.Result, 3)
		for _, tgt := range pim.AllTargets {
			for _, bench := range suite.All() {
				res, err := bench.Run(suite.Config{
					Target: tgt, Ranks: ranks, Size: fig12Sizes[bench.Info().Name],
				})
				if err != nil {
					return "", fmt.Errorf("fig12 %s/%v/%d ranks: %w", bench.Info().Name, tgt, ranks, err)
				}
				rs[tgt] = append(rs[tgt], res)
			}
		}
		byRank[ranks] = rs
	}
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 12: rank sensitivity (speedup over #Rank=4, kernel+host only)")
	fmt.Fprintf(&b, "%-11s %-14s %10s %10s %10s\n", "Arch", "Benchmark", "Rank=8", "Rank=16", "Rank=32")
	for _, tgt := range pim.AllTargets {
		base := byRank[4][tgt]
		for i, r := range base {
			b4 := kernelHostMS(r)
			row := []float64{}
			for _, ranks := range ranksList[1:] {
				row = append(row, b4/kernelHostMS(byRank[ranks][tgt][i]))
			}
			fmt.Fprintf(&b, "%-11s %-14s %10.3f %10.3f %10.3f\n",
				targetLabel(tgt), r.Benchmark, row[0], row[1], row[2])
		}
	}
	return b.String(), nil
}

// Fig13 renders the 1-vs-32-rank comparison at constant capacity: the
// 1-rank module gets 32x taller subarrays, so total cells match while the
// parallel PE count drops 32x.
func Fig13() (string, error) {
	wide, err := SuiteAllTargets(32)
	if err != nil {
		return "", err
	}
	var tall map[pim.Target][]suite.Result
	{
		tall = make(map[pim.Target][]suite.Result, 3)
		for _, tgt := range pim.AllTargets {
			var rs []suite.Result
			for _, bench := range suite.All() {
				res, err := bench.Run(suite.Config{
					Target: tgt, Ranks: 1, RowsPerSubarray: 1024 * 32,
				})
				if err != nil {
					return "", err
				}
				rs = append(rs, res)
			}
			tall[tgt] = rs
		}
	}
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 13: rank 1 vs 32 at equal capacity (speedup over #Rank=1, kernel+host only)")
	fmt.Fprintf(&b, "%-11s %-14s %12s\n", "Arch", "Benchmark", "Speedup")
	for _, tgt := range pim.AllTargets {
		for i, r := range wide[tgt] {
			fmt.Fprintf(&b, "%-11s %-14s %12.3f\n", targetLabel(tgt), r.Benchmark,
				kernelHostMS(tall[tgt][i])/kernelHostMS(r))
		}
	}
	return b.String(), nil
}

// ValidationRow is one kernel of the Section V-E Fulcrum validation.
type ValidationRow struct {
	Kernel      string
	PIMevalMS   float64
	ReferenceMS float64
}

// Ratio returns PIMeval time over reference time.
func (v ValidationRow) Ratio() float64 { return v.PIMevalMS / v.ReferenceMS }

// ValidateFulcrum compares PIMeval's Fulcrum model against the independent
// analytic reference on the paper's four validation kernels.
func ValidateFulcrum() ([]ValidationRow, error) {
	ref := fulcrum.Reference{Mod: dram.DDR4(32)}
	type k struct {
		name  string
		bench string
		refMS float64
	}
	const vecN, axpyN = 1 << 28, 1 << 24
	const gvRows, gvCols = 287, 8192
	const gmM, gmK, gmN = 23_521, 4096, 512
	kernels := []k{
		{"VectorAdd", "vecadd", ref.VecAddNS(vecN) * 1e-6},
		{"AXPY", "axpy", ref.AXPYNS(axpyN) * 1e-6},
		{"GEMV", "gemv", ref.GEMVNS(gvRows, gvCols) * 1e-6},
		{"GEMM", "gemm", ref.GEMMNS(gmM, gmK, gmN) * 1e-6},
	}
	sizes := map[string]int64{"vecadd": vecN, "axpy": axpyN, "gemv": gvRows, "gemm": gmM}
	var out []ValidationRow
	for _, kn := range kernels {
		bench, err := suite.ByName(kn.bench)
		if err != nil {
			return nil, err
		}
		res, err := bench.Run(suite.Config{Target: pim.Fulcrum, Ranks: 32, Size: sizes[kn.bench]})
		if err != nil {
			return nil, err
		}
		out = append(out, ValidationRow{Kernel: kn.name, PIMevalMS: res.Metrics.KernelMS, ReferenceMS: kn.refMS})
	}
	return out, nil
}

// RenderValidation formats the validation rows, followed by the Section
// V-E ii toy-UPMEM comparison.
func RenderValidation(rows []ValidationRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Section V-E validation: PIMeval Fulcrum vs independent analytic model")
	fmt.Fprintf(&b, "%-10s %14s %14s %8s\n", "Kernel", "PIMeval(ms)", "Reference(ms)", "Ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14.4f %14.4f %8.3f\n", r.Kernel, r.PIMevalMS, r.ReferenceMS, r.Ratio())
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, "Section V-E ii: toy UPMEM model vs hardware reference (paper: 23% / 35% slower)")
	fmt.Fprintf(&b, "%-10s %14s %14s %10s\n", "Kernel", "Toy(ms)", "Hardware(ms)", "Slowdown")
	for _, v := range upmem.Validate() {
		fmt.Fprintf(&b, "%-10s %14.4f %14.4f %9.1f%%\n", v.Kernel, v.ToyMS, v.HardwareMS, v.SlowdownPercent())
	}
	return b.String()
}

// ExtensionsTable runs the future-work kernels (prefix sum, string match,
// transitive closure, PCA — the paper's Section II/IX extension list) at
// full scale on all three architectures.
func ExtensionsTable() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "Extension kernels (paper future-work list), 32 ranks")
	fmt.Fprintf(&b, "%-11s %-18s %14s %14s %16s\n", "Arch", "Kernel", "Total(ms)", "SpeedupCPU", "EnergyRed.CPU")
	for _, tgt := range pim.AllTargets {
		for _, bench := range suite.Extensions() {
			res, err := bench.Run(suite.Config{Target: tgt, Ranks: 32})
			if err != nil {
				return "", fmt.Errorf("%s on %v: %w", bench.Info().Name, tgt, err)
			}
			w, _ := res.SpeedupCPU()
			fmt.Fprintf(&b, "%-11s %-18s %14.4f %14.3f %16.3f\n",
				targetLabel(tgt), res.Benchmark, res.Metrics.TotalMS(), w, res.EnergyReductionCPU())
		}
	}
	return b.String(), nil
}

// HBMTable re-runs four representative benchmarks on an HBM2 module with
// the same pseudo-channel count — the paper's future-work question of
// whether the architecture ranking changes on HBM (Section IX notes the
// conclusions "might change with HBM").
func HBMTable() (string, error) {
	// Sizes capped to the HBM2 module's smaller capacity (fewer banks and
	// shorter subarrays per pseudo-channel); both memories run the same
	// input so the ratio isolates the technology.
	apps := map[string]int64{"vecadd": 1 << 28, "axpy": 0, "gemv": 0, "histogram": 400_000_000}
	order := []string{"vecadd", "axpy", "gemv", "histogram"}
	var b strings.Builder
	fmt.Fprintln(&b, "Future work: DDR4 vs HBM2 (32 ranks / pseudo-channels, total ms incl. transfers)")
	fmt.Fprintf(&b, "%-11s %-12s %12s %12s %10s\n", "Arch", "Benchmark", "DDR4(ms)", "HBM2(ms)", "HBM gain")
	for _, tgt := range pim.AllTargets {
		for _, app := range order {
			bench, err := suite.ByName(app)
			if err != nil {
				return "", err
			}
			ddr, err := bench.Run(suite.Config{Target: tgt, Ranks: 32, Size: apps[app]})
			if err != nil {
				return "", err
			}
			hbm, err := bench.Run(suite.Config{Target: tgt, Ranks: 32, Memory: pim.MemHBM2, Size: apps[app]})
			if err != nil {
				return "", err
			}
			d, h := ddr.Metrics.TotalMS(), hbm.Metrics.TotalMS()
			fmt.Fprintf(&b, "%-11s %-12s %12.4f %12.4f %10.3f\n", targetLabel(tgt), app, d, h, d/h)
		}
	}
	return b.String(), nil
}

// AnalogTable compares the digital bit-serial design (DRAM-AP) against the
// Ambit/SIMDRAM-style analog bit-serial extension on primitive operations —
// quantifying the paper's Section IV argument for going digital: TRA
// operand staging multiplies the row-operation count.
func AnalogTable() (string, error) {
	const n = 64 << 20
	var b strings.Builder
	fmt.Fprintln(&b, "Extension: digital (DRAM-AP) vs analog (TRA) bit-serial, 64M int32, 8 ranks")
	fmt.Fprintf(&b, "%-10s %14s %14s %14s\n", "Op", "Digital(ms)", "Analog(ms)", "Analog/Digital")
	type dev struct {
		d         *pim.Device
		a, b, dst pim.ObjID
	}
	mk := func(tgt pim.Target) (dev, error) {
		d, err := pim.NewDevice(pim.Config{Target: tgt, Ranks: 8})
		if err != nil {
			return dev{}, err
		}
		a, err := d.Alloc(n, pim.Int32)
		if err != nil {
			return dev{}, err
		}
		bb, err := d.AllocAssociated(a)
		if err != nil {
			return dev{}, err
		}
		dst, err := d.AllocAssociated(a)
		if err != nil {
			return dev{}, err
		}
		return dev{d, a, bb, dst}, nil
	}
	dig, err := mk(pim.BitSerial)
	if err != nil {
		return "", err
	}
	ana, err := mk(pim.AnalogBitSerial)
	if err != nil {
		return "", err
	}
	ops := []struct {
		name string
		run  func(d dev) error
	}{
		{"Add", func(d dev) error { return d.d.Add(d.a, d.b, d.dst) }},
		{"Xor", func(d dev) error { return d.d.Xor(d.a, d.b, d.dst) }},
		{"Mul", func(d dev) error { return d.d.Mul(d.a, d.b, d.dst) }},
		{"Lt", func(d dev) error { return d.d.Lt(d.a, d.b, d.dst) }},
		{"PopCount", func(d dev) error { return d.d.PopCount(d.a, d.dst) }},
	}
	for _, op := range ops {
		dig.d.ResetStats()
		ana.d.ResetStats()
		if err := op.run(dig); err != nil {
			return "", err
		}
		if err := op.run(ana); err != nil {
			return "", err
		}
		dm, am := dig.d.Metrics().KernelMS, ana.d.Metrics().KernelMS
		fmt.Fprintf(&b, "%-10s %14.4f %14.4f %14.2f\n", op.name, dm, am, am/dm)
	}
	return b.String(), nil
}

// SizeSweep explores problem-size sensitivity — the paper's Section IX
// future work ("a comprehensive exploration of problem size is an
// essential direction"): speedup over the CPU as the vector-add and GEMV
// inputs grow, locating the size where PIM overtakes the baseline.
func SizeSweep() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "Future work: problem-size exploration (speedup vs CPU incl. transfers, 32 ranks)")
	fmt.Fprintf(&b, "%-11s %-10s %14s %12s\n", "Arch", "Benchmark", "N", "SpeedupCPU")
	type sweep struct {
		app   string
		sizes []int64
	}
	sweeps := []sweep{
		{"vecadd", []int64{1 << 16, 1 << 20, 1 << 24, 1 << 28, 1 << 31}},
		{"gemv", []int64{4, 64, 1024, 16_384}}, // rows at 8192 columns
	}
	for _, tgt := range pim.AllTargets {
		for _, sw := range sweeps {
			bench, err := suite.ByName(sw.app)
			if err != nil {
				return "", err
			}
			for _, n := range sw.sizes {
				res, err := bench.Run(suite.Config{Target: tgt, Ranks: 32, Size: n})
				if err != nil {
					return "", fmt.Errorf("%s size %d: %w", sw.app, n, err)
				}
				w, _ := res.SpeedupCPU()
				fmt.Fprintf(&b, "%-11s %-10s %14d %12.4f\n", targetLabel(tgt), sw.app, n, w)
			}
		}
	}
	return b.String(), nil
}

// AreaTable renders the per-chip area-overhead estimates (Section IX
// future work) for the paper's DDR4 module.
func AreaTable() string {
	return area.Render(area.ForModule(dram.DDR4(32)))
}

// BatchingTable explores batching small problems to fill the PIM
// computation bandwidth (Section IX: "many use cases call for smaller
// problem sizes, requiring batching to utilize the full PIM computation
// bandwidth"): amortized per-GEMV kernel latency as independent GEMV
// instances batch together.
func BatchingTable() (string, error) {
	const rows, cols = 64, 8192
	var b strings.Builder
	fmt.Fprintln(&b, "Future work: batching small GEMVs (64x8192 each, kernel ms per instance, 32 ranks)")
	fmt.Fprintf(&b, "%-11s %8s %18s %14s\n", "Arch", "Batch", "PerInstance(ms)", "Utilization")
	bench, err := suite.ByName("gemv")
	if err != nil {
		return "", err
	}
	for _, tgt := range pim.AllTargets {
		var single float64
		for _, batch := range []int64{1, 4, 16, 64} {
			// A batch of B independent GEMVs is one GEMV with B-fold rows.
			res, err := bench.Run(suite.Config{Target: tgt, Ranks: 32, Size: rows * batch})
			if err != nil {
				return "", err
			}
			per := res.Metrics.KernelMS / float64(batch)
			if batch == 1 {
				single = per
			}
			fmt.Fprintf(&b, "%-11s %8d %18.5f %13.1fx\n", targetLabel(tgt), batch, per, single/per)
		}
	}
	return b.String(), nil
}

// GDLTable ablates the bank-level GDL width — the paper "assume[s] a
// 128-bit GDL here to be generous to bank-level PIM"; this quantifies how
// much that generosity matters.
func GDLTable() (string, error) {
	const n = 64 << 20
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: bank-level GDL width (64M int32 add, kernel ms, 8 ranks)")
	fmt.Fprintf(&b, "%8s %14s\n", "GDLbits", "Latency(ms)")
	for _, width := range []int{32, 64, 128, 256} {
		dev, err := pim.NewDevice(pim.Config{Target: pim.BankLevel, Ranks: 8, GDLWidthBits: width})
		if err != nil {
			return "", err
		}
		a, err := dev.Alloc(n, pim.Int32)
		if err != nil {
			return "", err
		}
		bb, err := dev.AllocAssociated(a)
		if err != nil {
			return "", err
		}
		dst, err := dev.AllocAssociated(a)
		if err != nil {
			return "", err
		}
		if err := dev.Add(a, bb, dst); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%8d %14.4f\n", width, dev.Metrics().KernelMS)
	}
	return b.String(), nil
}

// GmeansSummary computes the headline numbers of the paper's conclusion:
// per-architecture geometric-mean speedup over the CPU (with data movement)
// and energy reductions vs CPU and GPU.
func GmeansSummary(results map[pim.Target][]suite.Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Headline geometric means (paper Conclusions)")
	fmt.Fprintf(&b, "%-11s %18s %18s %18s\n", "Arch", "SpeedupCPU(w/DM)", "EnergyRed.CPU", "EnergyRed.GPU")
	type row struct {
		name            string
		spd, ecpu, egpu float64
	}
	var rows []row
	for _, tgt := range pim.AllTargets {
		var spd, ecpu, egpu []float64
		for _, r := range results[tgt] {
			w, _ := r.SpeedupCPU()
			spd = append(spd, w)
			ecpu = append(ecpu, r.EnergyReductionCPU())
			egpu = append(egpu, r.EnergyReductionGPU())
		}
		rows = append(rows, row{targetLabel(tgt), gmean(spd), gmean(ecpu), gmean(egpu)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %18.3f %18.3f %18.3f\n", r.name, r.spd, r.ecpu, r.egpu)
	}
	return b.String()
}
