package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"pimeval/pim"
)

// BinStream measures the two command-stream encodings against each other:
// encoded size, bytes per record, and encode/decode throughput for JSON vs
// the bit-packed binary format, over recorded functional streams whose
// payload element width varies (the binary format packs payload elements at
// their true width, so narrow types compress hardest). The rendered table
// is the EXPERIMENTS.md "binary stream format" artifact; scripts/bench.sh
// captures the same comparison as BENCH_binstream.json via the
// BenchmarkBinaryStream/BenchmarkJSONStream benchmarks.
func BinStream() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Binary vs JSON command-stream encoding (functional vecadd-style recording)\n\n")
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %6s %10s %10s %10s %10s\n",
		"payload", "records", "JSON B", "binary B", "ratio",
		"enc MB/s", "enc MB/s", "dec MB/s", "dec MB/s")
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %6s %10s %10s %10s %10s\n",
		"", "", "", "", "", "(json)", "(bin)", "(json)", "(bin)")
	for _, c := range []struct {
		dt pim.DataType
		n  int64
	}{
		{pim.UInt8, 1 << 20},
		{pim.Int32, 1 << 20},
		{pim.Int64, 1 << 20},
	} {
		s, err := recordBinStreamSample(c.dt, c.n)
		if err != nil {
			return "", err
		}
		var jsonBuf, binBuf bytes.Buffer
		jsonEnc, err := timeIt(func() error { return s.Encode(&jsonBuf) })
		if err != nil {
			return "", err
		}
		binEnc, err := timeIt(func() error { return s.EncodeBinary(&binBuf) })
		if err != nil {
			return "", err
		}
		jsonDec, err := timeIt(func() error {
			_, err := pim.DecodeStream(bytes.NewReader(jsonBuf.Bytes()))
			return err
		})
		if err != nil {
			return "", err
		}
		binDec, err := timeIt(func() error {
			_, err := pim.DecodeStream(bytes.NewReader(binBuf.Bytes()))
			return err
		})
		if err != nil {
			return "", err
		}
		mbps := func(n int, d time.Duration) float64 {
			return float64(n) / (1 << 20) / d.Seconds()
		}
		fmt.Fprintf(&b, "%-8v %8d %12d %12d %5.1fx %10.0f %10.0f %10.0f %10.0f\n",
			c.dt, len(s.Records), jsonBuf.Len(), binBuf.Len(),
			float64(jsonBuf.Len())/float64(binBuf.Len()),
			mbps(jsonBuf.Len(), jsonEnc), mbps(binBuf.Len(), binEnc),
			mbps(jsonBuf.Len(), jsonDec), mbps(binBuf.Len(), binDec))
	}
	fmt.Fprintf(&b, "\nThroughput is measured over each format's own encoded bytes.\n")
	return b.String(), nil
}

// recordBinStreamSample records a payload-bearing functional stream: two
// operand uploads, an add, a reduction, and a readback on a one-rank
// Fulcrum device.
func recordBinStreamSample(dt pim.DataType, n int64) (*pim.Stream, error) {
	dev, err := pim.NewDevice(pim.Config{
		Target: pim.Fulcrum, Ranks: 1, Functional: true, Workers: Workers,
	})
	if err != nil {
		return nil, err
	}
	dev.RecordStream()
	rng := rand.New(rand.NewSource(1))
	a, err := dev.Alloc(n, dt)
	if err != nil {
		return nil, err
	}
	bo, err := dev.AllocAssociated(a)
	if err != nil {
		return nil, err
	}
	dst, err := dev.AllocAssociated(a)
	if err != nil {
		return nil, err
	}
	vals := make([]int64, n)
	for _, id := range []pim.ObjID{a, bo} {
		for i := range vals {
			vals[i] = dt.Truncate(rng.Int63())
		}
		if err := pim.CopyToDevice(dev, id, vals); err != nil {
			return nil, err
		}
	}
	if err := dev.Add(a, bo, dst); err != nil {
		return nil, err
	}
	if _, err := dev.RedSum(dst); err != nil {
		return nil, err
	}
	if err := pim.CopyFromDevice(dev, dst, vals); err != nil {
		return nil, err
	}
	return dev.RecordedStream(), nil
}

// timeIt runs f once and returns its wall-clock duration.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}
