package experiments

import (
	"fmt"
	"strings"
	"testing"

	"pimeval/pim"
)

func TestTable1ListsAllEighteen(t *testing.T) {
	s := Table1()
	for _, name := range []string{
		"vecadd", "axpy", "gemv", "gemm", "radixsort", "aes-enc", "aes-dec",
		"trianglecount", "filterbykey", "histogram", "brightness",
		"downsample", "knn", "linreg", "kmeans", "vgg13", "vgg16", "vgg19",
	} {
		if !strings.Contains(s, name) {
			t.Errorf("Table1 missing %s", name)
		}
	}
	if strings.Contains(s, "prefixsum") {
		t.Error("Table1 must exclude extension kernels")
	}
}

func TestTable2Configurations(t *testing.T) {
	s := Table2()
	for _, want := range []string{"EPYC", "A100", "Bit-serial", "Fulcrum", "Bank-level", "25.6", "28.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestSweepColumnsShapes(t *testing.T) {
	pts, err := Fig6Cols()
	if err != nil {
		t.Fatal(err)
	}
	lat := func(tgt pim.Target, op string, p int) float64 {
		for _, pt := range pts {
			if pt.Target == tgt && pt.Op == op && pt.Param == p {
				return pt.LatencyMS
			}
		}
		t.Fatalf("missing point %v/%s/%d", tgt, op, p)
		return 0
	}
	// Bit-serial halves with column doubling.
	if r := lat(pim.BitSerial, "Add", 1024) / lat(pim.BitSerial, "Add", 8192); r < 7 || r > 9 {
		t.Errorf("bit-serial column scaling = %v, want ~8", r)
	}
	// Figure 6 orderings at the full row width.
	if !(lat(pim.BitSerial, "Add", 8192) < lat(pim.Fulcrum, "Add", 8192) &&
		lat(pim.Fulcrum, "Add", 8192) < lat(pim.BankLevel, "Add", 8192)) {
		t.Error("Add ordering must be bit-serial < Fulcrum < bank-level")
	}
	if lat(pim.Fulcrum, "Mul", 8192) >= lat(pim.BitSerial, "Mul", 8192) {
		t.Error("Fulcrum must win Mul")
	}
	if lat(pim.BitSerial, "Mul", 8192) >= lat(pim.BankLevel, "Mul", 8192) {
		t.Error("bit-serial Mul must still beat bank-level (paper §VII)")
	}
	if lat(pim.BitSerial, "Reduction", 8192) >= lat(pim.Fulcrum, "Reduction", 8192) {
		t.Error("bit-serial must win Reduction")
	}
	if lat(pim.Fulcrum, "PopCount", 8192) <= lat(pim.BankLevel, "PopCount", 8192) ||
		lat(pim.Fulcrum, "PopCount", 8192) <= lat(pim.BitSerial, "PopCount", 8192) {
		t.Error("both bit-serial and bank-level must beat Fulcrum on PopCount")
	}
}

func TestSweepBanksScaling(t *testing.T) {
	pts, err := Fig6Banks()
	if err != nil {
		t.Fatal(err)
	}
	lat := func(tgt pim.Target, op string, p int) float64 {
		for _, pt := range pts {
			if pt.Target == tgt && pt.Op == op && pt.Param == p {
				return pt.LatencyMS
			}
		}
		t.Fatalf("missing point")
		return 0
	}
	// Bit-parallel designs scale with banks (paper: "Fulcrum and
	// bank-level... show sensitivity to bank-level parallelism").
	for _, tgt := range []pim.Target{pim.Fulcrum, pim.BankLevel} {
		if r := lat(tgt, "Add", 16) / lat(tgt, "Add", 128); r < 7 || r > 9 {
			t.Errorf("%v bank scaling = %v, want ~8", tgt, r)
		}
	}
	// Bit-serial also gains subarrays with banks here (capacity-bound).
	if lat(pim.BitSerial, "Add", 16) <= lat(pim.BitSerial, "Add", 128) {
		t.Error("bit-serial must not slow down with more banks")
	}
}

func TestValidationWithinPaperBounds(t *testing.T) {
	rows, err := ValidateFulcrum()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		ratio := r.Ratio()
		switch r.Kernel {
		case "VectorAdd", "AXPY":
			if ratio < 0.9 || ratio > 1.1 {
				t.Errorf("%s ratio = %v, want ~1.0 (paper: identical)", r.Kernel, ratio)
			}
		default:
			if ratio < 1.0 || ratio > 1.4 {
				t.Errorf("%s ratio = %v, want 1.0-1.4 (paper: ~10%% slower)", r.Kernel, ratio)
			}
		}
	}
	out := RenderValidation(rows)
	if !strings.Contains(out, "GEMM") {
		t.Error("render missing kernels")
	}
}

func TestFig1Structure(t *testing.T) {
	s, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's named near-duplicates must merge first: the VGG triple
	// and the AES pair appear before any other merge involving them.
	idx := strings.Index
	if idx(s, "vgg16 + vgg19") == -1 {
		t.Error("VGG variants must merge directly")
	}
	if idx(s, "aes-dec + aes-enc") == -1 {
		t.Error("AES directions must merge directly")
	}
	if idx(s, "axpy + vecadd") == -1 && idx(s, "brightness + vecadd") == -1 &&
		idx(s, "vecadd + axpy") == -1 && idx(s, "vecadd + brightness") == -1 {
		t.Error("vecadd must pair with another streaming kernel")
	}
}

func TestSuiteRunsDeterministic(t *testing.T) {
	a, err := RunSuite(pim.Fulcrum, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuite(pim.Fulcrum, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Metrics.KernelMS != b[i].Metrics.KernelMS {
			t.Errorf("%s: non-deterministic kernel time", a[i].Benchmark)
		}
	}
}

func TestGmeanHelper(t *testing.T) {
	if g := gmean([]float64{1, 4}); g != 2 {
		t.Errorf("gmean(1,4) = %v", g)
	}
	if g := gmean([]float64{0, -1}); g != 0 {
		t.Errorf("gmean of non-positives = %v, want 0", g)
	}
	if g := gmean([]float64{0, 9, 1}); g < 2.999 || g > 3.001 {
		t.Errorf("gmean skips non-positives: %v, want 3", g)
	}
}

func TestRenderersNonEmpty(t *testing.T) {
	res, err := SuiteAllTargets(8)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]struct{ body, want string }{
		"fig7":   {Fig7(res), "Fulcrum"},
		"fig8":   {Fig8(res[pim.BitSerial]), "popcount"},
		"fig9":   {Fig9(res), "Fulcrum"},
		"fig10a": {Fig10a(res), "Fulcrum"},
		"fig10b": {Fig10b(res), "Fulcrum"},
		"fig11":  {Fig11(res), "Fulcrum"},
		"sum":    {GmeansSummary(res), "Fulcrum"},
	}
	for name, c := range checks {
		if !strings.Contains(c.body, c.want) || len(c.body) < 200 {
			t.Errorf("%s render incomplete:\n%s", name, c.body[:min(200, len(c.body))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestExtensionsTable(t *testing.T) {
	s, err := ExtensionsTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"prefixsum", "stringmatch", "transitiveclosure", "pca"} {
		if !strings.Contains(s, want) {
			t.Errorf("extensions table missing %s", want)
		}
	}
}

func TestHBMTableShapes(t *testing.T) {
	s, err := HBMTable()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "HBM gain") || !strings.Contains(s, "vecadd") {
		t.Fatalf("HBM table incomplete:\n%s", s)
	}
}

func TestAnalogTableDigitalWins(t *testing.T) {
	s, err := AnalogTable()
	if err != nil {
		t.Fatal(err)
	}
	// Every row's Analog/Digital ratio must exceed 1 — the Section IV
	// argument for the digital design.
	for _, line := range strings.Split(s, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] == "Op" {
			continue
		}
		var ratio float64
		if _, err := fmt.Sscanf(fields[3], "%f", &ratio); err != nil {
			continue
		}
		if ratio <= 1 {
			t.Errorf("%s: analog/digital ratio = %v, want > 1", fields[0], ratio)
		}
	}
}

func TestSizeSweepCrossovers(t *testing.T) {
	s, err := SizeSweep()
	if err != nil {
		t.Fatal(err)
	}
	// Bit-serial GEMV must cross from slowdown to speedup as rows grow.
	var first, last float64
	for _, line := range strings.Split(s, "\n") {
		f := strings.Fields(line)
		if len(f) == 4 && f[0] == "Bit-Serial" && f[1] == "gemv" {
			var v float64
			if _, err := fmt.Sscanf(f[3], "%f", &v); err == nil {
				if first == 0 {
					first = v
				}
				last = v
			}
		}
	}
	if first >= 1 {
		t.Errorf("tiny GEMV must lose to the CPU (got %v)", first)
	}
	if last <= 1 {
		t.Errorf("large GEMV must beat the CPU (got %v)", last)
	}
}

func TestAreaTable(t *testing.T) {
	s := AreaTable()
	if !strings.Contains(s, "Overhead") || !strings.Contains(s, "Analog") {
		t.Fatalf("area table incomplete:\n%s", s)
	}
}
