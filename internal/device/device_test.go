package device

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"pimeval/internal/dram"
	"pimeval/internal/isa"
	"pimeval/internal/perf"
)

func newDev(t *testing.T, target Target) *Device {
	t.Helper()
	d, err := New(Config{Target: target, Module: dram.DDR4(1), Functional: true})
	if err != nil {
		t.Fatalf("New(%v): %v", target, err)
	}
	return d
}

var allTargets = []Target{TargetBitSerial, TargetFulcrum, TargetBankLevel}

func TestCreateDeviceValidation(t *testing.T) {
	if _, err := New(Config{Target: Target(99), Module: dram.DDR4(1)}); err == nil {
		t.Error("invalid target accepted")
	}
	bad := dram.DDR4(1)
	bad.Geometry.Ranks = 0
	if _, err := New(Config{Target: TargetFulcrum, Module: bad}); err == nil {
		t.Error("invalid module accepted")
	}
}

func TestAllocFreeLifecycle(t *testing.T) {
	for _, tgt := range allTargets {
		d := newDev(t, tgt)
		id, err := d.Alloc(1000, isa.Int32)
		if err != nil {
			t.Fatalf("%v: Alloc: %v", tgt, err)
		}
		o, err := d.Object(id)
		if err != nil {
			t.Fatal(err)
		}
		if o.Len() != 1000 || o.Type() != isa.Int32 || o.Bytes() != 4000 {
			t.Errorf("%v: object = %d/%v/%d", tgt, o.Len(), o.Type(), o.Bytes())
		}
		assoc, err := d.AllocAssociated(id, isa.Int32)
		if err != nil {
			t.Fatalf("AllocAssociated: %v", err)
		}
		ao, _ := d.Object(assoc)
		if ao.Len() != 1000 {
			t.Errorf("associated length %d", ao.Len())
		}
		if err := d.Free(id); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Object(id); !errors.Is(err, ErrFreed) {
			t.Errorf("freed object lookup: %v", err)
		}
		if err := d.Free(id); !errors.Is(err, ErrFreed) {
			t.Errorf("double free: %v", err)
		}
		if _, err := d.Object(ObjID(9999)); !errors.Is(err, ErrBadObject) {
			t.Errorf("never-allocated lookup: %v", err)
		}
	}
}

func TestAllocErrors(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	if _, err := d.Alloc(0, isa.Int32); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero alloc: %v", err)
	}
	if _, err := d.Alloc(-1, isa.Int32); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative alloc: %v", err)
	}
	if _, err := d.Alloc(10, isa.DataType(99)); !errors.Is(err, ErrBadArgument) {
		t.Errorf("bad type: %v", err)
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	// Model-only mode so the huge allocation does not materialize data.
	d, err := New(Config{Target: TargetFulcrum, Module: dram.DDR4(1)})
	if err != nil {
		t.Fatal(err)
	}
	capBits := dram.DDR4(1).Geometry.CapacityBits()
	if _, err := d.Alloc(capBits/32+1, isa.Int32); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("over-capacity alloc: %v", err)
	}
	// Exhaustion across multiple allocations.
	half := capBits / 64
	if _, err := d.Alloc(half, isa.Int32); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(half, isa.Int32); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(1024, isa.Int32); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("post-exhaustion alloc: %v", err)
	}
}

func TestFreeReturnsCapacity(t *testing.T) {
	d, err := New(Config{Target: TargetFulcrum, Module: dram.DDR4(1)})
	if err != nil {
		t.Fatal(err)
	}
	capElems := dram.DDR4(1).Geometry.CapacityBits() / 32
	id, err := d.Alloc(capElems, isa.Int32)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(capElems, isa.Int32); err != nil {
		t.Errorf("realloc after free: %v", err)
	}
}

func TestCopyRoundTrip(t *testing.T) {
	for _, tgt := range allTargets {
		d := newDev(t, tgt)
		id, _ := d.Alloc(5, isa.Int32)
		in := []int64{1, -2, 3, 1 << 40, -5} // 1<<40 truncates to 0 in int32
		if err := d.CopyHostToDevice(id, in); err != nil {
			t.Fatal(err)
		}
		out, err := d.CopyDeviceToHost(id)
		if err != nil {
			t.Fatal(err)
		}
		want := []int64{1, -2, 3, 0, -5}
		for i := range want {
			if out[i] != want[i] {
				t.Errorf("%v: out[%d] = %d, want %d", tgt, i, out[i], want[i])
			}
		}
		cs := d.Stats().Copies()
		if cs.HostToDeviceBytes != 20 || cs.DeviceToHostBytes != 20 {
			t.Errorf("%v: copy stats %+v", tgt, cs)
		}
		if cs.Cost.TimeNS <= 0 {
			t.Errorf("%v: copies must cost time", tgt)
		}
	}
}

func TestCopyShapeMismatch(t *testing.T) {
	d := newDev(t, TargetBitSerial)
	id, _ := d.Alloc(4, isa.Int32)
	if err := d.CopyHostToDevice(id, []int64{1, 2}); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("short copy: %v", err)
	}
}

func TestCopyDeviceToDeviceTiling(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	src, _ := d.Alloc(3, isa.Int32)
	dst, _ := d.Alloc(9, isa.Int32)
	if err := d.CopyHostToDevice(src, []int64{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyDeviceToDevice(src, dst); err != nil {
		t.Fatal(err)
	}
	out, _ := d.CopyDeviceToHost(dst)
	want := []int64{7, 8, 9, 7, 8, 9, 7, 8, 9}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("tiled copy out = %v", out)
		}
	}
	bad, _ := d.Alloc(10, isa.Int32) // not a multiple of 3
	if err := d.CopyDeviceToDevice(src, bad); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("non-multiple tile: %v", err)
	}
	other, _ := d.Alloc(3, isa.Int16)
	if err := d.CopyDeviceToDevice(src, other); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("cross-type d2d: %v", err)
	}
}

func TestWithRepeat(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	a, _ := d.Alloc(16, isa.Int32)
	b, _ := d.Alloc(16, isa.Int32)
	dst, _ := d.Alloc(16, isa.Int32)
	_ = d.CopyHostToDevice(a, make([]int64, 16))
	_ = d.CopyHostToDevice(b, make([]int64, 16))

	if err := d.ExecBinary(isa.OpAdd, a, b, dst); err != nil {
		t.Fatal(err)
	}
	once := d.Stats().Kernel()
	d.Stats().Reset()

	err := d.WithRepeat(1000, func() error {
		return d.ExecBinary(isa.OpAdd, a, b, dst)
	})
	if err != nil {
		t.Fatal(err)
	}
	k := d.Stats().Kernel()
	if k.TimeNS != 1000*once.TimeNS {
		t.Errorf("repeated kernel time %v, want 1000x %v", k.TimeNS, once.TimeNS)
	}
	cmds := d.Stats().Commands()
	if len(cmds) != 1 || cmds[0].Count != 1000 {
		t.Errorf("command count %+v", cmds)
	}

	if err := d.WithRepeat(0, func() error { return nil }); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero repeat: %v", err)
	}
	err = d.WithRepeat(2, func() error {
		return d.WithRepeat(2, func() error { return nil })
	})
	if !errors.Is(err, ErrBadArgument) {
		t.Errorf("nested repeat: %v", err)
	}
	// The repeat factor must reset even if fn fails.
	sentinel := errors.New("boom")
	if err := d.WithRepeat(5, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("error propagation: %v", err)
	}
	d.Stats().Reset()
	if err := d.ExecBinary(isa.OpAdd, a, b, dst); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Commands()[0].Count; got != 1 {
		t.Errorf("repeat leaked: count %d", got)
	}
}

func TestRecordHost(t *testing.T) {
	d := newDev(t, TargetBankLevel)
	d.RecordHost(perf.Cost{TimeNS: 500, EnergyPJ: 10})
	if got := d.Stats().Host(); got.TimeNS != 500 {
		t.Errorf("host = %+v", got)
	}
}

func TestModelOnlyModeSkipsData(t *testing.T) {
	d, err := New(Config{Target: TargetBitSerial, Module: dram.DDR4(32)})
	if err != nil {
		t.Fatal(err)
	}
	// Paper-scale: 2 billion elements, no data materialized.
	id, err := d.Alloc(2_035_544_320/4, isa.Int32)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CopyHostToDevice(id, nil); err != nil {
		t.Fatal(err)
	}
	dst, err := d.AllocAssociated(id, isa.Int32)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ExecBinary(isa.OpAdd, id, id, dst); err != nil {
		t.Fatal(err)
	}
	if out, err := d.CopyDeviceToHost(dst); err != nil || out != nil {
		t.Errorf("model-only d2h = %v, %v", out, err)
	}
	if d.Stats().Kernel().TimeNS <= 0 {
		t.Error("model-only mode must still charge kernel time")
	}
}

// TestAllocFreeFuzz exercises the resource manager with a random
// allocate/free workload and checks capacity accounting never leaks: after
// freeing everything, a full-capacity allocation must succeed again.
func TestAllocFreeFuzz(t *testing.T) {
	for _, tgt := range allTargets {
		d, err := New(Config{Target: tgt, Module: dram.DDR4(1)})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		live := map[ObjID]bool{}
		types := []isa.DataType{isa.Int8, isa.Int16, isa.Int32, isa.Int64, isa.UInt32}
		for i := 0; i < 500; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				for id := range live {
					if err := d.Free(id); err != nil {
						t.Fatalf("free: %v", err)
					}
					delete(live, id)
					break
				}
				continue
			}
			n := int64(1 + rng.Intn(1<<16))
			id, err := d.Alloc(n, types[rng.Intn(len(types))])
			if err != nil {
				// Out-of-memory is acceptable mid-fuzz; anything else is not.
				if !errors.Is(err, ErrOutOfMemory) {
					t.Fatalf("alloc: %v", err)
				}
				continue
			}
			live[id] = true
		}
		for id := range live {
			if err := d.Free(id); err != nil {
				t.Fatal(err)
			}
		}
		capElems := dram.DDR4(1).Geometry.CapacityBits() / 32
		big, err := d.Alloc(capElems, isa.Int32)
		if err != nil {
			t.Fatalf("%v: capacity leaked during fuzz: %v", tgt, err)
		}
		if err := d.Free(big); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAnalogTargetBasics(t *testing.T) {
	d, err := New(Config{Target: TargetAnalogBitSerial, Module: dram.DDR4(2), Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	g := dram.DDR4(2).Geometry
	if got := d.Cores(); got != g.TotalSubarrays() {
		t.Errorf("analog cores = %d, want one per subarray", got)
	}
	// Reserved compute rows shrink capacity below the digital target's.
	dig, err := New(Config{Target: TargetBitSerial, Module: dram.DDR4(2)})
	if err != nil {
		t.Fatal(err)
	}
	aCap := d.Arch().ElemCapacityPerCore(g, 32)
	dCap := dig.Arch().ElemCapacityPerCore(g, 32)
	if aCap >= dCap {
		t.Errorf("analog capacity/core (%d) must be below digital (%d): reserved rows", aCap, dCap)
	}
	// Functional execution matches the shared word-level semantics.
	a, _ := d.Alloc(8, isa.Int32)
	b, _ := d.Alloc(8, isa.Int32)
	dst, _ := d.Alloc(8, isa.Int32)
	_ = d.CopyHostToDevice(a, []int64{1, 2, 3, 4, -1, -2, -3, -4})
	_ = d.CopyHostToDevice(b, []int64{10, 20, 30, 40, 50, 60, 70, 80})
	if err := d.ExecBinary(isa.OpAdd, a, b, dst); err != nil {
		t.Fatal(err)
	}
	out, _ := d.CopyDeviceToHost(dst)
	for i, want := range []int64{11, 22, 33, 44, 49, 58, 67, 76} {
		if out[i] != want {
			t.Errorf("analog add[%d] = %d, want %d", i, out[i], want)
		}
	}
	if d.Stats().Kernel().TimeNS <= 0 {
		t.Error("analog target must charge kernel time")
	}
}

func TestTraceRecordsDispatch(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	a, _ := d.Alloc(16, isa.Int32)
	b, _ := d.Alloc(16, isa.Int32)
	dst, _ := d.Alloc(16, isa.Int32)
	_ = d.CopyHostToDevice(a, make([]int64, 16))
	_ = d.CopyHostToDevice(b, make([]int64, 16))
	// Commands before EnableTrace must not appear.
	if err := d.ExecBinary(isa.OpAdd, a, b, dst); err != nil {
		t.Fatal(err)
	}
	d.EnableTrace()
	if err := d.ExecBinary(isa.OpMul, a, b, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CopyDeviceToHost(dst); err != nil {
		t.Fatal(err)
	}
	err := d.WithRepeat(7, func() error { return d.ExecBinary(isa.OpAdd, a, b, dst) })
	if err != nil {
		t.Fatal(err)
	}
	d.DisableTrace()
	if err := d.ExecBinary(isa.OpSub, a, b, dst); err != nil {
		t.Fatal(err)
	}

	tr := d.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace has %d entries, want 3: %v", len(tr), tr)
	}
	if tr[0].Name != "mul.int32" || tr[1].Name != "copy.d2h" || tr[2].Name != "add.int32" {
		t.Errorf("trace names = %v %v %v", tr[0].Name, tr[1].Name, tr[2].Name)
	}
	if tr[2].Reps != 7 {
		t.Errorf("repeat factor not traced: %+v", tr[2])
	}
	s := d.TraceString()
	for _, want := range []string{"mul.int32", "copy.d2h", "x7"} {
		if !strings.Contains(s, want) {
			t.Errorf("TraceString missing %q:\n%s", want, s)
		}
	}
}

// TestBenchErrorPropagation is the failure-injection check: a module too
// small for the requested input must surface a clean out-of-memory error
// through a full benchmark run, never a panic or a silent wrong answer.
func TestDeviceOOMIsCleanError(t *testing.T) {
	tiny := dram.DDR4(1)
	tiny.Geometry.RowsPerSubarray = 64
	tiny.Geometry.SubarraysPerBank = 2
	tiny.Geometry.BanksPerRank = 2
	d, err := New(Config{Target: TargetBitSerial, Module: tiny})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(1<<30, isa.Int32); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("tiny module alloc: %v", err)
	}
}

func TestCoresPerTarget(t *testing.T) {
	g := dram.DDR4(4).Geometry
	wants := map[Target]int{
		TargetBitSerial: g.TotalSubarrays(),
		TargetFulcrum:   g.TotalSubarrays() / 2,
		TargetBankLevel: g.TotalBanks(),
	}
	for tgt, want := range wants {
		d, err := New(Config{Target: tgt, Module: dram.DDR4(4)})
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Cores(); got != want {
			t.Errorf("%v: Cores = %d, want %d", tgt, got, want)
		}
	}
}

func TestTargetStringBounds(t *testing.T) {
	// Negative and past-the-end values must format, not panic (String is
	// called from error paths that see arbitrary ints).
	for _, tgt := range []Target{-1, -99, Target(len(targetNames)), 99} {
		if got := tgt.String(); !strings.Contains(got, "target(") {
			t.Errorf("Target(%d).String() = %q", int(tgt), got)
		}
		if tgt.Valid() {
			t.Errorf("Target(%d) reports valid", int(tgt))
		}
	}
	for i, want := range targetNames {
		if got := Target(i).String(); got != want {
			t.Errorf("Target(%d).String() = %q, want %q", i, got, want)
		}
	}
}

func TestCopyDeviceToDeviceRangeErrors(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	src, _ := d.Alloc(8, isa.Int32)
	dst, _ := d.Alloc(8, isa.Int32)
	_ = d.CopyHostToDevice(src, make([]int64, 8))
	_ = d.CopyHostToDevice(dst, make([]int64, 8))

	cases := map[string]struct {
		srcOff, dstOff, n int64
	}{
		"zero-length":      {0, 0, 0},
		"negative-length":  {0, 0, -1},
		"negative-src-off": {-1, 0, 4},
		"negative-dst-off": {0, -1, 4},
		"src-overrun":      {6, 0, 4},
		"dst-overrun":      {0, 6, 4},
	}
	for name, c := range cases {
		err := d.CopyDeviceToDeviceRange(src, c.srcOff, dst, c.dstOff, c.n)
		if !errors.Is(err, ErrBadArgument) {
			t.Errorf("%s: err = %v, want ErrBadArgument", name, err)
		}
	}

	other, _ := d.Alloc(8, isa.Int16)
	if err := d.CopyDeviceToDeviceRange(src, 0, other, 0, 4); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("type mismatch: err = %v, want ErrShapeMismatch", err)
	}
	if err := d.CopyDeviceToDeviceRange(src, 0, ObjID(999), 0, 4); !errors.Is(err, ErrBadObject) {
		t.Errorf("unknown dst: err = %v, want ErrBadObject", err)
	}

	// A valid ranged copy still works and moves the right elements.
	_ = d.CopyHostToDevice(src, []int64{1, 2, 3, 4, 5, 6, 7, 8})
	if err := d.CopyDeviceToDeviceRange(src, 2, dst, 5, 3); err != nil {
		t.Fatal(err)
	}
	out, _ := d.CopyDeviceToHost(dst)
	if out[5] != 3 || out[6] != 4 || out[7] != 5 {
		t.Errorf("ranged copy out = %v", out)
	}
}

func TestTraceRecordsDeviceToDeviceCopies(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	src, _ := d.Alloc(4, isa.Int32)
	dst, _ := d.Alloc(8, isa.Int32)
	_ = d.CopyHostToDevice(src, []int64{1, 2, 3, 4})
	_ = d.CopyHostToDevice(dst, make([]int64, 8))
	d.EnableTrace()
	if err := d.CopyDeviceToDevice(src, dst); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyDeviceToDeviceRange(src, 0, dst, 4, 2); err != nil {
		t.Fatal(err)
	}
	tr := d.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace has %d entries, want 2:\n%s", len(tr), d.TraceString())
	}
	// Tiling broadcast charges the source volume; the ranged copy charges
	// the moved bytes.
	if tr[0].Name != "copy.d2d" || tr[0].N != 4*4 {
		t.Errorf("d2d entry = %+v", tr[0])
	}
	if tr[1].Name != "copy.d2d" || tr[1].N != 2*4 {
		t.Errorf("ranged d2d entry = %+v", tr[1])
	}
	for _, e := range tr {
		if e.Cost.TimeNS <= 0 || e.Cost.EnergyPJ <= 0 {
			t.Errorf("d2d entry missing cost: %+v", e)
		}
	}
	// The d2d traffic must agree with the statistics' copy accounting.
	if c := d.Stats().Copies(); c.DeviceToDeviceBytes != 4*4+2*4 {
		t.Errorf("d2d bytes = %d, want %d", c.DeviceToDeviceBytes, 4*4+2*4)
	}
}

func TestWithRepeatNestingLeavesStreamBalanced(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	d.StartRecording()
	a, _ := d.Alloc(4, isa.Int32)
	_ = d.CopyHostToDevice(a, make([]int64, 4))
	err := d.WithRepeat(3, func() error {
		return d.WithRepeat(2, func() error { return nil })
	})
	if !errors.Is(err, ErrBadArgument) {
		t.Fatalf("nested WithRepeat: %v", err)
	}
	// The rejected inner scope must not unbalance the recorded stream.
	var begins, ends int
	for _, r := range d.RecordedStream().Records {
		switch r.Kind {
		case "repeat.begin":
			begins++
		case "repeat.end":
			ends++
		}
	}
	if begins != 1 || ends != 1 {
		t.Errorf("stream has %d begins / %d ends, want 1/1", begins, ends)
	}
	// And the device must accept a fresh scope afterwards.
	if err := d.WithRepeat(2, func() error { return nil }); err != nil {
		t.Errorf("scope after rejected nesting: %v", err)
	}
}
