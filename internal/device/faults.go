package device

import "pimeval/internal/fault"

// Fault-injection stage glue. The injector (internal/fault) runs serially
// inside the single-threaded dispatcher, immediately after the functional
// backend writes an operation's destination and before the event fans out to
// sinks — mirroring hardware, where faults strike the stored bits, not the
// computation. Every write consumes one injector sequence number whether or
// not data is materialized, so a functional stream replayed on a device
// built from its header faults bit-for-bit identically.

// eccOn reports whether the SEC-DED cost model is active.
func (d *Device) eccOn() bool {
	return d.inj != nil && d.cfg.Faults != nil && d.cfg.Faults.ECC
}

// injectWrite runs the fault stage over one completed write into o's element
// range [lo, hi), records the per-write fault counters into the statistics,
// and returns the injector's verdict (an error wrapping ErrUncorrectable
// when ECC detected an unrecoverable error). With injection disabled it is a
// nil check and nothing else — the no-fault dispatch path stays byte- and
// cost-identical. In model-only mode no data exists to corrupt; the stage
// still consumes a sequence number to stay in lockstep with functional
// replays of the same command stream.
func (d *Device) injectWrite(o *Object, lo, hi int64) error {
	// Inlinable fast path: fault-free devices pay one nil check.
	if d.inj == nil {
		return nil
	}
	return d.injectWriteSlow(o, lo, hi)
}

// injectWriteSlow is the out-of-line injection stage behind injectWrite's
// nil check. Counters go straight to the statistics collector (not through
// the event fan-out) so the Event stays lean for the fault-free hot path.
func (d *Device) injectWriteSlow(o *Object, lo, hi int64) error {
	delta, err := d.inj.InjectWrite(fault.Region{
		Data:         o.data,
		Type:         o.dt,
		Lo:           lo,
		Hi:           hi,
		ElemsPerCore: o.elemsPerCore,
		ActiveCores:  o.activeCores,
	})
	if delta.Any() {
		d.pipe.stats.st.RecordFaults(delta)
	}
	return err
}
