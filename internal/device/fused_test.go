package device

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"pimeval/internal/cmdstream"
	"pimeval/internal/dram"
	"pimeval/internal/isa"
)

// fusedShapes enumerates every stage-form combination the optimizer can
// emit, with concrete ops covering arithmetic, logic, and the fusable
// unary set.
type fusedShape struct {
	name         string
	form1, form2 cmdstream.Form
	op1, op2     isa.Op
	s1, s2       int64
}

var fusedShapes = []fusedShape{
	{"binary+unary", cmdstream.FormBinary, cmdstream.FormUnary, isa.OpSub, isa.OpAbs, 0, 0},
	{"binary+scalar", cmdstream.FormBinary, cmdstream.FormScalar, isa.OpAdd, isa.OpMul, 0, 3},
	{"scalar+binary", cmdstream.FormScalar, cmdstream.FormBinary, isa.OpMul, isa.OpAdd, 5, 0},
	{"scalar+scalar", cmdstream.FormScalar, cmdstream.FormScalar, isa.OpAdd, isa.OpXor, -7, 0x55},
	{"scalar+unary", cmdstream.FormScalar, cmdstream.FormUnary, isa.OpSub, isa.OpPopCount, 9, 0},
}

// fusedInputs builds edge-heavy operand vectors for a data type: extremes,
// zero, minus one, then seeded randoms.
func fusedInputs(dt isa.DataType, n int64) (a, b []int64) {
	var lo, hi int64
	if dt.Signed() {
		hi = 1<<(dt.Bits()-1) - 1
		lo = -hi - 1
	} else {
		lo, hi = 0, dt.Truncate(-1)
	}
	seedA := []int64{lo, hi, 0, -1, 1, lo + 1, hi - 1, 42}
	seedB := []int64{hi, lo, -1, 0, lo, 2, hi, -3}
	rng := rand.New(rand.NewSource(7))
	a = make([]int64, n)
	b = make([]int64, n)
	for i := int64(0); i < n; i++ {
		if i < int64(len(seedA)) {
			a[i], b[i] = seedA[i], seedB[i]
		} else {
			a[i], b[i] = dt.Truncate(rng.Int63()), dt.Truncate(rng.Int63())
		}
	}
	return a, b
}

// runSequential executes the two-stage pair through a materialized
// intermediate on a fresh device and returns the dst data plus the kernel
// cost of the two execs.
func runSequential(t *testing.T, tgt Target, dt isa.DataType, sh fusedShape, a, b []int64) ([]int64, float64, float64) {
	t.Helper()
	d := newDev(t, tgt)
	n := int64(len(a))
	ao, _ := d.Alloc(n, dt)
	bo, _ := d.Alloc(n, dt)
	to, _ := d.Alloc(n, dt)
	do, _ := d.Alloc(n, dt)
	if err := d.CopyHostToDevice(ao, a); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyHostToDevice(bo, b); err != nil {
		t.Fatal(err)
	}
	var err error
	if sh.form1 == cmdstream.FormBinary {
		err = d.ExecBinary(sh.op1, ao, bo, to)
	} else {
		err = d.ExecScalar(sh.op1, ao, sh.s1, to)
	}
	if err != nil {
		t.Fatalf("stage 1: %v", err)
	}
	switch sh.form2 {
	case cmdstream.FormUnary:
		err = d.ExecUnary(sh.op2, to, do)
	case cmdstream.FormScalar:
		err = d.ExecScalar(sh.op2, to, sh.s2, do)
	default:
		err = d.ExecBinary(sh.op2, to, bo, do)
	}
	if err != nil {
		t.Fatalf("stage 2: %v", err)
	}
	got, err := d.CopyDeviceToHost(do)
	if err != nil {
		t.Fatal(err)
	}
	k := d.Stats().Kernel()
	return got, k.TimeNS, k.EnergyPJ
}

// TestExecFusedMatchesSequentialPair is the device-level fusion oracle:
// for every target, data type, and fused shape, the one-dispatch fused
// command must produce bit-identical dst data to the sequential two-kernel
// pair, and must never cost more on the architecture model.
func TestExecFusedMatchesSequentialPair(t *testing.T) {
	targets := append(append([]Target(nil), allTargets...), TargetAnalogBitSerial)
	dtypes := []isa.DataType{isa.Int8, isa.Int16, isa.Int32, isa.UInt8, isa.UInt32}
	const n = 64
	for _, tgt := range targets {
		for _, dt := range dtypes {
			for _, sh := range fusedShapes {
				a, b := fusedInputs(dt, n)
				want, seqT, seqE := runSequential(t, tgt, dt, sh, a, b)

				d := newDev(t, tgt)
				ao, _ := d.Alloc(n, dt)
				bo, _ := d.Alloc(n, dt)
				do, _ := d.Alloc(n, dt)
				if err := d.CopyHostToDevice(ao, a); err != nil {
					t.Fatal(err)
				}
				if err := d.CopyHostToDevice(bo, b); err != nil {
					t.Fatal(err)
				}
				err := d.ExecFused(cmdstream.Fused{
					Form1: sh.form1, Form2: sh.form2,
					Op1: sh.op1, Op2: sh.op2,
					A: ao, B: bo, Dst: do, S1: sh.s1, S2: sh.s2,
				})
				if err != nil {
					t.Fatalf("%v/%v/%s: ExecFused: %v", tgt, dt, sh.name, err)
				}
				got, err := d.CopyDeviceToHost(do)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%v/%v/%s: fused data differs from sequential pair\n got %v\nwant %v",
						tgt, dt, sh.name, got, want)
				}
				// Bit-serial targets price the fused command as the exact
				// sum of its two stages, but floating-point summation order
				// differs — compare with a relative epsilon.
				const eps = 1e-9
				k := d.Stats().Kernel()
				if k.TimeNS > seqT*(1+eps) || k.EnergyPJ > seqE*(1+eps) {
					t.Errorf("%v/%v/%s: fused cost (%.3f ns, %.3f pJ) exceeds sequential pair (%.3f ns, %.3f pJ)",
						tgt, dt, sh.name, k.TimeNS, k.EnergyPJ, seqT, seqE)
				}
			}
		}
	}
}

// TestExecFusedReferencePathAgrees forces the per-element reference
// composition (ReferenceEval) and checks it against the fused-kernel fast
// path — both must implement the same truncate-between-stages semantics.
func TestExecFusedReferencePathAgrees(t *testing.T) {
	const n = 32
	dt := isa.Int16
	for _, sh := range fusedShapes {
		a, b := fusedInputs(dt, n)
		var out [2][]int64
		for i, ref := range []bool{false, true} {
			d, err := New(Config{Target: TargetFulcrum, Module: dram.DDR4(1), Functional: true, ReferenceEval: ref})
			if err != nil {
				t.Fatal(err)
			}
			ao, _ := d.Alloc(n, dt)
			bo, _ := d.Alloc(n, dt)
			do, _ := d.Alloc(n, dt)
			if err := d.CopyHostToDevice(ao, a); err != nil {
				t.Fatal(err)
			}
			if err := d.CopyHostToDevice(bo, b); err != nil {
				t.Fatal(err)
			}
			if err := d.ExecFused(cmdstream.Fused{
				Form1: sh.form1, Form2: sh.form2, Op1: sh.op1, Op2: sh.op2,
				A: ao, B: bo, Dst: do, S1: sh.s1, S2: sh.s2,
			}); err != nil {
				t.Fatalf("%s (ref=%v): %v", sh.name, ref, err)
			}
			out[i], err = d.CopyDeviceToHost(do)
			if err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(out[0], out[1]) {
			t.Errorf("%s: kernel path and reference composition disagree\n kernel %v\n    ref %v",
				sh.name, out[0], out[1])
		}
	}
}

// TestExecFusedAliasedDst checks the optimizer's most common emission:
// the fused destination aliasing an input (dst == a), as produced when the
// second stage overwrote the intermediate in the original stream.
func TestExecFusedAliasedDst(t *testing.T) {
	const n = 16
	dt := isa.Int32
	a, b := fusedInputs(dt, n)
	want, _, _ := runSequential(t, TargetFulcrum, dt, fusedShapes[2], a, b)

	d := newDev(t, TargetFulcrum)
	ao, _ := d.Alloc(n, dt)
	bo, _ := d.Alloc(n, dt)
	if err := d.CopyHostToDevice(ao, a); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyHostToDevice(bo, b); err != nil {
		t.Fatal(err)
	}
	sh := fusedShapes[2] // scalar+binary: dst = a*s1 + b
	if err := d.ExecFused(cmdstream.Fused{
		Form1: sh.form1, Form2: sh.form2, Op1: sh.op1, Op2: sh.op2,
		A: ao, B: bo, Dst: ao, S1: sh.s1, S2: sh.s2,
	}); err != nil {
		t.Fatal(err)
	}
	got, err := d.CopyDeviceToHost(ao)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("aliased dst: got %v want %v", got, want)
	}
}

func TestExecFusedValidation(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	a, _ := d.Alloc(8, isa.Int32)
	b, _ := d.Alloc(8, isa.Int32)
	short, _ := d.Alloc(4, isa.Int32)
	dst, _ := d.Alloc(8, isa.Int32)
	cases := map[string]cmdstream.Fused{
		"bad stage1 form": {Form1: cmdstream.FormUnary, Form2: cmdstream.FormUnary,
			Op1: isa.OpNot, Op2: isa.OpAbs, A: a, Dst: dst},
		"non-binary stage1 op": {Form1: cmdstream.FormBinary, Form2: cmdstream.FormUnary,
			Op1: isa.OpNot, Op2: isa.OpAbs, A: a, B: b, Dst: dst},
		"non-fusable unary": {Form1: cmdstream.FormBinary, Form2: cmdstream.FormUnary,
			Op1: isa.OpAdd, Op2: isa.OpSbox, A: a, B: b, Dst: dst},
		"binary stage2 needs scalar stage1": {Form1: cmdstream.FormBinary, Form2: cmdstream.FormBinary,
			Op1: isa.OpAdd, Op2: isa.OpMul, A: a, B: b, Dst: dst},
		"bad stage2 form": {Form1: cmdstream.FormScalar, Form2: cmdstream.FormBroadcast,
			Op1: isa.OpAdd, Op2: isa.OpMul, A: a, Dst: dst},
		"shape mismatch": {Form1: cmdstream.FormBinary, Form2: cmdstream.FormUnary,
			Op1: isa.OpAdd, Op2: isa.OpAbs, A: a, B: short, Dst: dst},
	}
	for name, f := range cases {
		if err := d.ExecFused(f); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrBadArgument) && !errors.Is(err, ErrShapeMismatch) {
			t.Errorf("%s: unexpected error class: %v", name, err)
		}
	}
}
