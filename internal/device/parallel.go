package device

import (
	"fmt"
)

// Parallel functional execution engine.
//
// The allocator assigns every object contiguous per-core element regions:
// core c owns elements [c*elemsPerCore, min((c+1)*elemsPerCore, n)). The
// simulated architecture executes those regions independently — thousands of
// PIM cores with no cross-core communication inside one command — so the
// functional engine may evaluate them concurrently without changing any
// observable result.
//
// Sharding rule: a dispatch task is a contiguous run of whole core regions.
// Tasks never split a core, so every task writes a disjoint element range of
// the destination, and reduction partials correspond to runs of cores.
//
// Determinism guarantee: element-wise commands write disjoint ranges
// (scheduling cannot reorder anything observable), reduction partials are
// merged serially in ascending task (= core) order after all workers drain,
// and statistics, latency, and energy are charged once per command at
// dispatch — never per shard. The Workers=1 path executes the identical
// single loop the engine always had and is kept as the reference
// implementation; internal/device/paralleltest proves the two paths
// bit-identical for every op x data type x architecture.

// parallelGrain is the minimum element count worth fanning out: below this,
// goroutine dispatch costs more than the loop itself and the engine runs
// the serial reference path (which is bit-identical anyway).
const parallelGrain = 4096

// tasksPerWorker over-decomposes the range so the atomic-counter scheduler
// can balance cores whose regions straddle the tail of the object.
const tasksPerWorker = 4

// The span type and the layout-aligned partitioning live with the resource
// manager (resource.go): the split is a property of how objects are laid out
// across cores.

// forSpans evaluates fn over every span of o across the worker pool. fn must
// touch only state derivable from its own range; use spansCollect when a
// per-span partial result needs a deterministic merge. A non-nil error means
// the device's context canceled the loop (ErrCanceled, with the context's
// error wrapped alongside) and the destination holds partial output.
func (d *Device) forSpans(o *Object, fn func(lo, hi int64)) error {
	sp := d.res.spans(o, d.workers)
	err := d.pool.ForCtx(d.ctx, len(sp), func(i int) { fn(sp[i].lo, sp[i].hi) })
	if err != nil {
		return fmt.Errorf("%w: functional execution interrupted: %w", ErrCanceled, err)
	}
	return nil
}

// spansCollect evaluates fn over every span of o across the worker pool and
// returns the per-span results in ascending span order, ready for a
// deterministic core-order merge. On a cancellation error the partials are
// invalid and nil is returned.
func spansCollect[T any](d *Device, o *Object, fn func(lo, hi int64) T) ([]T, error) {
	sp := d.res.spans(o, d.workers)
	parts := make([]T, len(sp))
	err := d.pool.ForCtx(d.ctx, len(sp), func(i int) { parts[i] = fn(sp[i].lo, sp[i].hi) })
	if err != nil {
		return nil, fmt.Errorf("%w: functional execution interrupted: %w", ErrCanceled, err)
	}
	return parts, nil
}
