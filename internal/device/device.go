// Package device implements the PIMeval simulator core: PIM device creation,
// the resource manager for PIM data objects, command dispatch with
// functional word-level execution, and performance/energy accounting through
// the per-architecture cost models.
//
// The public programming surface lives in package pim; this package is the
// engine behind it.
package device

import (
	"errors"
	"fmt"

	"pimeval/internal/analog"
	"pimeval/internal/banklevel"
	"pimeval/internal/bitserial"
	"pimeval/internal/dram"
	"pimeval/internal/energy"
	"pimeval/internal/fulcrum"
	"pimeval/internal/isa"
	"pimeval/internal/par"
	"pimeval/internal/perf"
	"pimeval/internal/stats"
)

// Target selects the simulated PIM architecture.
type Target int

// The three architectures modeled by the paper.
const (
	TargetBitSerial Target = iota // subarray-level digital bit-serial (DRAM-AP)
	TargetFulcrum                 // subarray-level bit-parallel (Fulcrum)
	TargetBankLevel               // bank-level bit-parallel
	// TargetAnalogBitSerial is the Ambit/SIMDRAM-style analog bit-serial
	// extension (paper Section IX in-progress work); it is not part of the
	// paper's three-way comparison.
	TargetAnalogBitSerial
)

var targetNames = [...]string{"bitserial", "fulcrum", "banklevel", "analog"}

// String returns the short target name.
func (t Target) String() string {
	if int(t) < len(targetNames) {
		return targetNames[t]
	}
	return fmt.Sprintf("target(%d)", int(t))
}

// Valid reports whether t names a supported architecture.
func (t Target) Valid() bool { return t >= 0 && int(t) < len(targetNames) }

// ArchModel is the per-architecture cost model consumed by the simulator.
type ArchModel interface {
	// Name returns the simulation-target identifier used in reports.
	Name() string
	// Vertical reports whether data is laid out vertically (bit-serial).
	Vertical() bool
	// Cores returns the number of PIM cores the geometry provides.
	Cores(g dram.Geometry) int
	// ElemCapacityPerCore returns how many elements of the given bit width
	// fit in one core's memory under the architecture's layout.
	ElemCapacityPerCore(g dram.Geometry, bits int) int64
	// ActiveSubarraysPerCore returns how many subarrays an active core
	// holds open (for background energy).
	ActiveSubarraysPerCore() int
	// CmdCost returns the latency and energy of one command execution.
	CmdCost(cmd isa.Command, elemsPerCore int64, activeCores int, mod dram.Module, em energy.Model) perf.Cost
}

// Config describes a PIM device instance.
type Config struct {
	Target Target
	Module dram.Module
	// Functional enables data-carrying simulation: objects hold real
	// values and every command computes its result. With Functional off,
	// only the performance/energy model runs, allowing paper-scale inputs
	// without materializing gigabytes.
	Functional bool
	// Workers bounds the functional engine's worker pool: 0 selects
	// runtime.NumCPU(), 1 forces the serial reference path. Results are
	// bit-identical for every setting (see parallel.go).
	Workers int
}

// Sentinel errors returned by the resource manager and dispatcher.
var (
	ErrOutOfMemory   = errors.New("device: PIM memory capacity exceeded")
	ErrBadObject     = errors.New("device: unknown or freed PIM object")
	ErrShapeMismatch = errors.New("device: operand shapes or types differ")
	ErrBadArgument   = errors.New("device: invalid argument")
)

// ObjID identifies an allocated PIM data object. The zero value is invalid.
type ObjID int64

// Object is one allocated PIM data object: a 1-D array of fixed-width
// elements distributed across PIM cores.
type Object struct {
	id           ObjID
	dt           isa.DataType
	n            int64
	data         []int64 // canonical truncated values; nil in model-only mode
	elemsPerCore int64
	activeCores  int
}

// Len returns the element count.
func (o *Object) Len() int64 { return o.n }

// Type returns the element type.
func (o *Object) Type() isa.DataType { return o.dt }

// Bytes returns the object's data size in bytes.
func (o *Object) Bytes() int64 { return o.n * int64(o.dt.Bytes()) }

// Device is one simulated PIM device instance.
type Device struct {
	cfg      Config
	arch     ArchModel
	em       energy.Model
	st       *stats.Stats
	objs     map[ObjID]*Object
	nextID   ObjID
	usedBits int64
	workers  int
	repeat   int64
	tracing  bool
	trace    []TraceEntry
	traceSeq int64
}

// New creates a PIM device for the configuration.
func New(cfg Config) (*Device, error) {
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("%w: target %d", ErrBadArgument, int(cfg.Target))
	}
	if err := cfg.Module.Validate(); err != nil {
		return nil, err
	}
	var arch ArchModel
	switch cfg.Target {
	case TargetBitSerial:
		arch = bitserial.NewModel()
	case TargetFulcrum:
		arch = fulcrum.NewModel()
	case TargetBankLevel:
		arch = banklevel.NewModel()
	case TargetAnalogBitSerial:
		arch = analog.NewModel()
	}
	return &Device{
		cfg:     cfg,
		arch:    arch,
		em:      energy.NewModel(cfg.Module),
		st:      stats.New(),
		objs:    make(map[ObjID]*Object),
		nextID:  1,
		repeat:  1,
		workers: par.Resolve(cfg.Workers),
	}, nil
}

// Workers returns the resolved size of the functional engine's worker pool.
func (d *Device) Workers() int { return d.workers }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Arch returns the architecture model (for reporting).
func (d *Device) Arch() ArchModel { return d.arch }

// Stats returns the device's statistics collector.
func (d *Device) Stats() *stats.Stats { return d.st }

// Cores returns the device's PIM core count.
func (d *Device) Cores() int { return d.arch.Cores(d.cfg.Module.Geometry) }

// Alloc allocates a PIM object of n elements of type dt, spread across all
// PIM cores for maximum parallelism (the paper's PIM_ALLOC_AUTO policy).
func (d *Device) Alloc(n int64, dt isa.DataType) (ObjID, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: element count %d", ErrBadArgument, n)
	}
	if !dt.Valid() {
		return 0, fmt.Errorf("%w: data type %d", ErrBadArgument, int(dt))
	}
	g := d.cfg.Module.Geometry
	cores := int64(d.arch.Cores(g))
	elemsPerCore := (n + cores - 1) / cores
	capPerCore := d.arch.ElemCapacityPerCore(g, dt.Bits())
	if elemsPerCore > capPerCore {
		return 0, fmt.Errorf("%w: need %d elems/core, capacity %d", ErrOutOfMemory, elemsPerCore, capPerCore)
	}
	bits := n * int64(dt.Bits())
	if d.usedBits+bits > d.cfg.Module.Geometry.CapacityBits() {
		return 0, fmt.Errorf("%w: %d bits requested, %d free", ErrOutOfMemory,
			bits, d.cfg.Module.Geometry.CapacityBits()-d.usedBits)
	}
	obj := &Object{
		id:           d.nextID,
		dt:           dt,
		n:            n,
		elemsPerCore: elemsPerCore,
		activeCores:  int((n + elemsPerCore - 1) / elemsPerCore),
	}
	if d.cfg.Functional {
		obj.data = make([]int64, n)
	}
	d.objs[obj.id] = obj
	d.nextID++
	d.usedBits += bits
	return obj.id, nil
}

// AllocAssociated allocates an object with the same shape and core mapping
// as ref (the paper's pimAllocAssociated), optionally with a different type.
func (d *Device) AllocAssociated(ref ObjID, dt isa.DataType) (ObjID, error) {
	r, err := d.obj(ref)
	if err != nil {
		return 0, err
	}
	return d.Alloc(r.n, dt)
}

// Free releases a PIM object.
func (d *Device) Free(id ObjID) error {
	o, err := d.obj(id)
	if err != nil {
		return err
	}
	d.usedBits -= o.n * int64(o.dt.Bits())
	delete(d.objs, id)
	return nil
}

// obj resolves an object ID.
func (d *Device) obj(id ObjID) (*Object, error) {
	o := d.objs[id]
	if o == nil {
		return nil, fmt.Errorf("%w: id %d", ErrBadObject, int64(id))
	}
	return o, nil
}

// Object returns the object for inspection (tests, benchmarks).
func (d *Device) Object(id ObjID) (*Object, error) { return d.obj(id) }

// WithRepeat runs fn with every command and host record inside it charged n
// times (loop collapsing for paper-scale iteration counts: the body executes
// functionally once, the model charges it n times). Calls may not nest.
func (d *Device) WithRepeat(n int64, fn func() error) error {
	if n <= 0 {
		return fmt.Errorf("%w: repeat %d", ErrBadArgument, n)
	}
	if d.repeat != 1 {
		return fmt.Errorf("%w: WithRepeat may not nest", ErrBadArgument)
	}
	d.repeat = n
	defer func() { d.repeat = 1 }()
	return fn()
}

// CopyHostToDevice copies values into the object. In model-only mode values
// may be nil; in functional mode len(values) must equal the object length.
func (d *Device) CopyHostToDevice(id ObjID, values []int64) error {
	o, err := d.obj(id)
	if err != nil {
		return err
	}
	if d.cfg.Functional {
		if int64(len(values)) != o.n {
			return fmt.Errorf("%w: copy of %d values into object of %d", ErrShapeMismatch, len(values), o.n)
		}
		d.forSpans(o, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				o.data[i] = o.dt.Truncate(values[i])
			}
		})
	}
	cost := perf.DataMovement(d.cfg.Module, o.Bytes(), false).Scale(float64(d.repeat))
	d.record("copy.h2d", o.Bytes(), cost)
	d.st.RecordCopy(o.Bytes()*d.repeat, 0, 0, cost)
	return nil
}

// CopyDeviceToHost copies the object's values out. In model-only mode it
// returns nil data after charging the transfer.
func (d *Device) CopyDeviceToHost(id ObjID) ([]int64, error) {
	o, err := d.obj(id)
	if err != nil {
		return nil, err
	}
	cost := perf.DataMovement(d.cfg.Module, o.Bytes(), true).Scale(float64(d.repeat))
	d.record("copy.d2h", o.Bytes(), cost)
	d.st.RecordCopy(0, o.Bytes()*d.repeat, 0, cost)
	if !d.cfg.Functional {
		return nil, nil
	}
	out := make([]int64, o.n)
	copy(out, o.data)
	return out, nil
}

// CopyDeviceToDevice copies src into dst. If dst is larger, src is tiled
// (replicated) to fill it — the mechanism GEMV-style kernels use to
// broadcast a vector across matrix rows.
func (d *Device) CopyDeviceToDevice(src, dst ObjID) error {
	s, err := d.obj(src)
	if err != nil {
		return err
	}
	t, err := d.obj(dst)
	if err != nil {
		return err
	}
	if s.dt != t.dt {
		return fmt.Errorf("%w: d2d between %v and %v", ErrShapeMismatch, s.dt, t.dt)
	}
	if t.n%s.n != 0 {
		return fmt.Errorf("%w: dst length %d not a multiple of src length %d", ErrShapeMismatch, t.n, s.n)
	}
	if d.cfg.Functional {
		for i := int64(0); i < t.n; i += s.n {
			copy(t.data[i:i+s.n], s.data)
		}
	}
	var cost perf.Cost
	var volume int64
	if t.n > s.n {
		// Replicating a small operand across a large object is a
		// broadcast: the controller transmits the source once over the
		// shared bus and every core writes its local rows in parallel.
		em := energy.NewModel(d.cfg.Module)
		g := d.cfg.Module.Geometry
		rowsPerCore := float64(t.elemsPerCore*int64(t.dt.Bits())+int64(g.ColsPerRow)-1) /
			float64(g.ColsPerRow)
		cost = perf.DataMovement(d.cfg.Module, s.Bytes(), false)
		cost.TimeNS += rowsPerCore * d.cfg.Module.Timing.RowWriteNS
		cost.EnergyPJ += rowsPerCore * em.RowWritePJ() * float64(t.activeCores)
		volume = s.Bytes()
	} else {
		// A same-size move travels over the module's internal buses at
		// rank bandwidth.
		cost = perf.DataMovement(d.cfg.Module, t.Bytes(), false)
		volume = t.Bytes()
	}
	cost = cost.Scale(float64(d.repeat))
	d.st.RecordCopy(0, 0, volume*d.repeat, cost)
	return nil
}

// CopyDeviceToDeviceRange copies n elements from src starting at srcOff
// into dst starting at dstOff — the gather primitive graph kernels use to
// assemble row batches from a resident adjacency matrix.
func (d *Device) CopyDeviceToDeviceRange(src ObjID, srcOff int64, dst ObjID, dstOff, n int64) error {
	s, err := d.obj(src)
	if err != nil {
		return err
	}
	t, err := d.obj(dst)
	if err != nil {
		return err
	}
	if s.dt != t.dt {
		return fmt.Errorf("%w: ranged d2d between %v and %v", ErrShapeMismatch, s.dt, t.dt)
	}
	if n <= 0 || srcOff < 0 || dstOff < 0 || srcOff+n > s.n || dstOff+n > t.n {
		return fmt.Errorf("%w: ranged d2d [%d,%d)->[%d,%d) outside objects of %d/%d",
			ErrBadArgument, srcOff, srcOff+n, dstOff, dstOff+n, s.n, t.n)
	}
	if d.cfg.Functional {
		copy(t.data[dstOff:dstOff+n], s.data[srcOff:srcOff+n])
	}
	bytes := n * int64(t.dt.Bytes())
	cost := perf.DataMovement(d.cfg.Module, bytes, false).Scale(float64(d.repeat))
	d.st.RecordCopy(0, 0, bytes*d.repeat, cost)
	return nil
}

// RecordHost charges a host-executed phase to the device's statistics.
func (d *Device) RecordHost(cost perf.Cost) {
	d.st.RecordHost(cost.Scale(float64(d.repeat)))
}

// charge records the command's modeled cost against the stats.
func (d *Device) charge(cmd isa.Command, shape *Object) {
	cost := d.arch.CmdCost(cmd, shape.elemsPerCore, shape.activeCores, d.cfg.Module, d.em)
	d.record(cmd.Name(), cmd.N, cost)
	// Background energy: the per-subarray active/precharge standby delta
	// multiplied by the module's total subarray count and the command
	// duration (paper Section V-D iii: "multiply this power by the total
	// number of subarrays"). Slow architectures therefore pay background
	// power for longer — a first-order effect for bank-level PIM.
	total := d.cfg.Module.Geometry.TotalSubarrays()
	cost.EnergyPJ += d.em.BackgroundEnergyPJ(total, cost.TimeNS)
	cost = cost.Scale(float64(d.repeat))
	d.st.RecordCmd(cmd.Name(), cmd.Op.Category(), d.repeat, cost)
}
