// Package device implements the PIMeval simulator core behind the public
// pim package. It is organized as layers connected by the command-stream IR
// of internal/cmdstream:
//
//   - resource.go — the resource manager: PIM object table, capacity
//     accounting, and the per-core span layout of every object.
//   - dispatch.go — the staged dispatch pipeline every operation flows
//     through: validate → lower to a cmdstream record → functional backend →
//     cost model → fan-out to sinks.
//   - sink.go — the pluggable sinks fed by the pipeline: statistics, the
//     command trace, and the stream recorder behind record/replay.
//   - exec.go — the exec-command entry points and the word-level functional
//     semantics (the sharded engine of parallel.go runs the element loops).
//   - copy.go — data-movement entry points (host/device copies, host phases).
//   - replay.go — rebuilding a device from a recorded stream's header.
package device

import (
	"context"
	"errors"
	"fmt"

	"pimeval/internal/analog"
	"pimeval/internal/banklevel"
	"pimeval/internal/bitserial"
	"pimeval/internal/cmdstream"
	"pimeval/internal/dram"
	"pimeval/internal/energy"
	"pimeval/internal/fault"
	"pimeval/internal/fulcrum"
	"pimeval/internal/isa"
	"pimeval/internal/par"
	"pimeval/internal/perf"
	"pimeval/internal/stats"
)

// Target selects the simulated PIM architecture.
type Target int

// The three architectures modeled by the paper.
const (
	TargetBitSerial Target = iota // subarray-level digital bit-serial (DRAM-AP)
	TargetFulcrum                 // subarray-level bit-parallel (Fulcrum)
	TargetBankLevel               // bank-level bit-parallel
	// TargetAnalogBitSerial is the Ambit/SIMDRAM-style analog bit-serial
	// extension (paper Section IX in-progress work); it is not part of the
	// paper's three-way comparison.
	TargetAnalogBitSerial
)

var targetNames = [...]string{"bitserial", "fulcrum", "banklevel", "analog"}

// String returns the short target name.
func (t Target) String() string {
	if t >= 0 && int(t) < len(targetNames) {
		return targetNames[t]
	}
	return fmt.Sprintf("target(%d)", int(t))
}

// Valid reports whether t names a supported architecture.
func (t Target) Valid() bool { return t >= 0 && int(t) < len(targetNames) }

// ArchModel is the per-architecture cost model consumed by the simulator.
type ArchModel interface {
	// Name returns the simulation-target identifier used in reports.
	Name() string
	// Vertical reports whether data is laid out vertically (bit-serial).
	Vertical() bool
	// Cores returns the number of PIM cores the geometry provides.
	Cores(g dram.Geometry) int
	// ElemCapacityPerCore returns how many elements of the given bit width
	// fit in one core's memory under the architecture's layout.
	ElemCapacityPerCore(g dram.Geometry, bits int) int64
	// ActiveSubarraysPerCore returns how many subarrays an active core
	// holds open (for background energy).
	ActiveSubarraysPerCore() int
	// CmdCost returns the latency and energy of one command execution.
	CmdCost(cmd isa.Command, elemsPerCore int64, activeCores int, mod dram.Module, em energy.Model) perf.Cost
}

// Config describes a PIM device instance.
type Config struct {
	Target Target
	Module dram.Module
	// Functional enables data-carrying simulation: objects hold real
	// values and every command computes its result. With Functional off,
	// only the performance/energy model runs, allowing paper-scale inputs
	// without materializing gigabytes.
	Functional bool
	// Workers bounds the functional engine's worker pool: 0 selects
	// runtime.NumCPU(), 1 forces the serial reference path. Results are
	// bit-identical for every setting (see parallel.go).
	Workers int
	// ReferenceEval bypasses the specialized element kernels of
	// internal/kernels and runs the golden per-element evaluators instead
	// (evalBinary/evalUnary/evalShift). Outputs are bit-identical either
	// way — the knob exists for differential testing and before/after
	// benchmarking of the kernel path, and costs wall-clock time only.
	ReferenceEval bool
	// Faults configures the deterministic fault-injection stage
	// (internal/fault) that runs over every device memory write, plus the
	// optional SEC-DED ECC model. Nil (the default) leaves the dispatch
	// pipeline byte-identical to a fault-free build.
	Faults *fault.Config
}

// Sentinel errors returned by the resource manager and dispatcher. Every
// error leaving the device wraps exactly one of these (errors.Is matches),
// with the operation-specific detail carried in the message.
var (
	ErrOutOfMemory   = errors.New("device: PIM memory capacity exceeded")
	ErrBadObject     = errors.New("device: unknown PIM object")
	ErrShapeMismatch = errors.New("device: operand shapes or types differ")
	ErrBadArgument   = errors.New("device: invalid argument")
	// ErrFreed reports a use of an object after Free — distinct from
	// ErrBadObject (an ID never allocated) so callers can tell a
	// double-free or use-after-free bug from a corrupted handle.
	ErrFreed = errors.New("device: PIM object already freed")
	// ErrCanceled reports an operation abandoned because the context
	// installed with SetContext was canceled or its deadline passed. The
	// underlying context error is wrapped too, so errors.Is matches both.
	ErrCanceled = errors.New("device: operation canceled")
	// ErrUncorrectable re-exports the fault package's uncorrectable-ECC
	// sentinel at the device boundary.
	ErrUncorrectable = fault.ErrUncorrectable
	// ErrPanic reports a panic recovered at the dispatch boundary — the
	// device survives (its state may be partially updated), and the panic
	// value is in the message.
	ErrPanic = errors.New("device: panic during dispatch")
)

// ObjID identifies an allocated PIM data object. The zero value is invalid.
// It aliases the command-stream IR's object identifier, so *Device satisfies
// cmdstream.Executor directly.
type ObjID = cmdstream.ObjID

// Device is one simulated PIM device instance: a resource manager plus the
// staged dispatch pipeline, wired to the architecture's cost model.
type Device struct {
	cfg     Config
	arch    ArchModel
	em      energy.Model
	res     resourceManager
	pipe    pipeline
	workers int
	// pool is the device's handle on the persistent shared worker engine,
	// sized once from Config.Workers; every functional dispatch reuses it
	// instead of spawning goroutines.
	pool *par.Pool
	// ctx, when non-nil, cancels in-flight and subsequent operations
	// (SetContext). nil means "never canceled" and costs nothing.
	ctx context.Context
	// inj is the fault-injection stage, nil unless Config.Faults enables
	// at least one fault source or the ECC model.
	inj *fault.Injector
}

// New creates a PIM device for the configuration.
func New(cfg Config) (*Device, error) {
	if !cfg.Target.Valid() {
		return nil, fmt.Errorf("%w: target %d", ErrBadArgument, int(cfg.Target))
	}
	if err := cfg.Module.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgument, err)
	}
	var arch ArchModel
	switch cfg.Target {
	case TargetBitSerial:
		arch = bitserial.NewModel()
	case TargetFulcrum:
		arch = fulcrum.NewModel()
	case TargetBankLevel:
		arch = banklevel.NewModel()
	case TargetAnalogBitSerial:
		arch = analog.NewModel()
	}
	pool := par.NewPool(cfg.Workers)
	d := &Device{
		cfg:     cfg,
		arch:    arch,
		em:      energy.NewModel(cfg.Module),
		workers: pool.Workers(),
		pool:    pool,
	}
	if cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(*cfg.Faults, arch.Cores(cfg.Module.Geometry))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadArgument, err)
		}
		d.inj = inj
	}
	d.res.init(arch, cfg.Module.Geometry, cfg.Functional)
	d.pipe.init(stats.New())
	return d, nil
}

// SetContext installs a cancellation context: once ctx is canceled (or its
// deadline passes), in-flight functional loops stop handing out work and
// every subsequent operation fails with an error wrapping both ErrCanceled
// and the context's error. A nil ctx removes the hook. Call between
// operations only — the device dispatcher is single-threaded.
func (d *Device) SetContext(ctx context.Context) { d.ctx = ctx }

// start is the per-dispatch cancellation check shared by every entry point.
// Inlinable fast path: devices without a context pay one nil check.
func (d *Device) start() error {
	if d.ctx == nil {
		return nil
	}
	return d.startCtx()
}

// startCtx is the out-of-line context check behind start's nil check.
func (d *Device) startCtx() error {
	if err := d.ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// guarded reports whether the hardened dispatch path is active: entry points
// defer panic recovery only when a resilience feature — fault injection or a
// cancellation context (even context.Background()) — is switched on. A plain
// device pays two nil checks and skips the defer, keeping the no-fault
// dispatch path at seed cost.
func (d *Device) guarded() bool { return d.inj != nil || d.ctx != nil }

// guard converts a panic escaping a dispatch entry point into an error
// wrapping ErrPanic, so one poisoned operation cannot take down a whole
// benchmark suite. Deferred with a named return at each public entry point
// when the device is guarded (see guarded).
func guard(errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("%w: %v", ErrPanic, r)
	}
}

// FaultCounts returns the accumulated fault-injection and ECC counters, or
// the zero value when fault injection is disabled.
func (d *Device) FaultCounts() fault.Counts {
	if d.inj == nil {
		return fault.Counts{}
	}
	return d.inj.Counts()
}

// Workers returns the resolved size of the functional engine's worker pool.
func (d *Device) Workers() int { return d.workers }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Arch returns the architecture model (for reporting).
func (d *Device) Arch() ArchModel { return d.arch }

// Stats returns the device's statistics collector.
func (d *Device) Stats() *stats.Stats { return d.pipe.stats.st }

// Cores returns the device's PIM core count.
func (d *Device) Cores() int { return d.arch.Cores(d.cfg.Module.Geometry) }

// Alloc allocates a PIM object of n elements of type dt, spread across all
// PIM cores for maximum parallelism (the paper's PIM_ALLOC_AUTO policy).
func (d *Device) Alloc(n int64, dt isa.DataType) (ObjID, error) {
	if err := d.start(); err != nil {
		return 0, err
	}
	obj, err := d.res.alloc(n, dt)
	if err != nil {
		return 0, err
	}
	d.lowerAlloc(obj)
	return obj.id, nil
}

// AllocAs allocates a PIM object under an explicit ID — the replay path for
// optimized streams, whose recorded ID sequences may have gaps where dead
// allocations were eliminated.
func (d *Device) AllocAs(id ObjID, n int64, dt isa.DataType) error {
	if err := d.start(); err != nil {
		return err
	}
	obj, err := d.res.allocAt(id, n, dt)
	if err != nil {
		return err
	}
	d.lowerAlloc(obj)
	return nil
}

// AllocAssociated allocates an object with the same shape and core mapping
// as ref (the paper's pimAllocAssociated), optionally with a different type.
func (d *Device) AllocAssociated(ref ObjID, dt isa.DataType) (ObjID, error) {
	r, err := d.res.lookup(ref)
	if err != nil {
		return 0, err
	}
	return d.Alloc(r.n, dt)
}

// Free releases a PIM object. Freeing an already-freed object returns
// ErrFreed.
func (d *Device) Free(id ObjID) error {
	if err := d.start(); err != nil {
		return err
	}
	if err := d.res.free(id); err != nil {
		return err
	}
	d.lowerFree(id)
	return nil
}

// Object returns the object for inspection (tests, benchmarks).
func (d *Device) Object(id ObjID) (*Object, error) { return d.res.lookup(id) }

// obj is the dispatcher's shorthand for resource-manager lookups.
func (d *Device) obj(id ObjID) (*Object, error) { return d.res.lookup(id) }

// WithRepeat runs fn with every command and host record inside it charged n
// times (loop collapsing for paper-scale iteration counts: the body executes
// functionally once, the model charges it n times). Calls may not nest.
func (d *Device) WithRepeat(n int64, fn func() error) error {
	if n <= 0 {
		return fmt.Errorf("%w: repeat %d", ErrBadArgument, n)
	}
	if d.pipe.repeat != 1 {
		return fmt.Errorf("%w: WithRepeat may not nest", ErrBadArgument)
	}
	d.pipe.repeat = n
	d.lowerRepeatBegin(n)
	defer func() {
		d.pipe.repeat = 1
		d.lowerRepeatEnd()
	}()
	return fn()
}
