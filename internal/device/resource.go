package device

import (
	"fmt"

	"pimeval/internal/dram"
	"pimeval/internal/isa"
)

// Object is one allocated PIM data object: a 1-D array of fixed-width
// elements distributed across PIM cores.
type Object struct {
	id           ObjID
	dt           isa.DataType
	n            int64
	data         []int64 // canonical truncated values; nil in model-only mode
	elemsPerCore int64
	activeCores  int
}

// Len returns the element count.
func (o *Object) Len() int64 { return o.n }

// Type returns the element type.
func (o *Object) Type() isa.DataType { return o.dt }

// Bytes returns the object's data size in bytes.
func (o *Object) Bytes() int64 { return o.n * int64(o.dt.Bytes()) }

// resourceManager is the device's resource manager: it owns the PIM object
// table, capacity accounting, and the per-core span layout of every object.
// It is one of the two units the simulator core splits into (the other is
// the dispatch pipeline) and knows nothing about costs or sinks.
type resourceManager struct {
	arch       ArchModel
	geo        dram.Geometry
	functional bool
	objs       map[ObjID]*Object
	// freed remembers released IDs so a double-free or use-after-free is
	// reported as ErrFreed rather than the generic ErrBadObject.
	freed    map[ObjID]bool
	nextID   ObjID
	usedBits int64
	// spanBuf is the reusable span slice handed out by spans(). The
	// dispatcher is single-threaded and every forSpans/spansCollect batch
	// drains before the next dispatch, so one buffer per device suffices
	// and the per-command allocation disappears from the hot path.
	spanBuf []span
}

// init prepares an empty object table.
func (rm *resourceManager) init(arch ArchModel, geo dram.Geometry, functional bool) {
	rm.arch = arch
	rm.geo = geo
	rm.functional = functional
	rm.objs = make(map[ObjID]*Object)
	rm.freed = make(map[ObjID]bool)
	rm.nextID = 1
}

// alloc validates and performs one allocation: n elements of type dt spread
// across all PIM cores. Object IDs are assigned from a sequential counter,
// which makes allocation deterministic — the property command-stream replay
// relies on to resolve recorded object references.
func (rm *resourceManager) alloc(n int64, dt isa.DataType) (*Object, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: element count %d", ErrBadArgument, n)
	}
	if !dt.Valid() {
		return nil, fmt.Errorf("%w: data type %d", ErrBadArgument, int(dt))
	}
	cores := int64(rm.arch.Cores(rm.geo))
	elemsPerCore := (n + cores - 1) / cores
	capPerCore := rm.arch.ElemCapacityPerCore(rm.geo, dt.Bits())
	if elemsPerCore > capPerCore {
		return nil, fmt.Errorf("%w: need %d elems/core, capacity %d", ErrOutOfMemory, elemsPerCore, capPerCore)
	}
	bits := n * int64(dt.Bits())
	if rm.usedBits+bits > rm.geo.CapacityBits() {
		return nil, fmt.Errorf("%w: %d bits requested, %d free", ErrOutOfMemory,
			bits, rm.geo.CapacityBits()-rm.usedBits)
	}
	obj := &Object{
		id:           rm.nextID,
		dt:           dt,
		n:            n,
		elemsPerCore: elemsPerCore,
		activeCores:  int((n + elemsPerCore - 1) / elemsPerCore),
	}
	if rm.functional {
		obj.data = make([]int64, n)
	}
	rm.objs[obj.id] = obj
	rm.nextID++
	rm.usedBits += bits
	return obj, nil
}

// allocAt performs one allocation under an explicit, caller-chosen ID. It is
// the replay path for optimized streams: dead-alloc elimination leaves gaps
// in the recorded ID sequence, so surviving allocations must land on their
// recorded IDs. The sequential counter advances past the given ID to keep
// subsequent plain allocations collision-free.
func (rm *resourceManager) allocAt(id ObjID, n int64, dt isa.DataType) (*Object, error) {
	if id <= 0 {
		return nil, fmt.Errorf("%w: object id %d", ErrBadArgument, int64(id))
	}
	if _, ok := rm.objs[id]; ok {
		return nil, fmt.Errorf("%w: object id %d already allocated", ErrBadArgument, int64(id))
	}
	if rm.freed[id] {
		return nil, fmt.Errorf("%w: object id %d was already freed", ErrBadArgument, int64(id))
	}
	obj, err := rm.alloc(n, dt)
	if err != nil {
		return nil, err
	}
	// Re-home the object from the sequential ID alloc assigned to the
	// requested one.
	delete(rm.objs, obj.id)
	obj.id = id
	rm.objs[id] = obj
	if rm.nextID <= id {
		rm.nextID = id + 1
	}
	return obj, nil
}

// free releases an object and returns its capacity.
func (rm *resourceManager) free(id ObjID) error {
	o, err := rm.lookup(id)
	if err != nil {
		return err
	}
	rm.usedBits -= o.n * int64(o.dt.Bits())
	delete(rm.objs, id)
	rm.freed[id] = true
	return nil
}

// lookup resolves an object ID, distinguishing never-allocated IDs
// (ErrBadObject) from released ones (ErrFreed).
func (rm *resourceManager) lookup(id ObjID) (*Object, error) {
	o := rm.objs[id]
	if o == nil {
		if rm.freed[id] {
			return nil, fmt.Errorf("%w: id %d", ErrFreed, int64(id))
		}
		return nil, fmt.Errorf("%w: id %d", ErrBadObject, int64(id))
	}
	return o, nil
}

// span is one dispatch task of the functional engine: a half-open element
// range covering whole per-core regions of the object being executed.
type span struct{ lo, hi int64 }

// spans partitions [0, o.n) into dispatch tasks aligned to o's per-core
// regions — the span layout is a property of how the resource manager laid
// the object out across cores. With one worker (or a small object) it
// returns the single span [0, n): the serial reference path.
func (rm *resourceManager) spans(o *Object, workers int) []span {
	n := o.n
	if workers <= 1 || n < parallelGrain {
		rm.spanBuf = append(rm.spanBuf[:0], span{0, n})
		return rm.spanBuf
	}
	epc := o.elemsPerCore
	if epc <= 0 {
		epc = n
	}
	cores := (n + epc - 1) / epc
	targetTasks := int64(workers * tasksPerWorker)
	coresPerTask := (cores + targetTasks - 1) / targetTasks
	if minCores := (parallelGrain + epc - 1) / epc; coresPerTask < minCores {
		coresPerTask = minCores
	}
	step := coresPerTask * epc
	out := rm.spanBuf[:0]
	for lo := int64(0); lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		out = append(out, span{lo, hi})
	}
	rm.spanBuf = out
	return out
}
