package device

import "fmt"

// ParamsHeader renders the device-parameters block that heads the
// artifact-style statistics report (Listing 3). It depends only on the
// device configuration, so a device reconstructed from a stream header
// renders the identical block — the server and the public pim.Device.Report
// both build their reports from it, keeping the two byte-identical.
func (d *Device) ParamsHeader() string {
	mod := d.cfg.Module
	g := mod.Geometry
	return fmt.Sprintf(
		"PIM Params:\n"+
			"  PIM Simulation Target : %s\n"+
			"  Rank, Bank, Subarray, Row, Col : %d, %d, %d, %d, %d\n"+
			"  Number of PIM Cores : %d\n"+
			"  Typical Rank BW : %f GB/s\n"+
			"  Row Read (ns) : %f\n"+
			"  Row Write (ns) : %f\n"+
			"  tCCD (ns) : %f",
		d.arch.Name(), g.Ranks, g.BanksPerRank, g.SubarraysPerBank,
		g.RowsPerSubarray, g.ColsPerRow, d.Cores(), mod.RankBandwidthGBs,
		mod.Timing.RowReadNS, mod.Timing.RowWriteNS, mod.Timing.TCCDNS)
}

// ReportString renders the full artifact-style report: the parameters
// header followed by the accumulated statistics.
func (d *Device) ReportString() string {
	return d.Stats().Report(d.ParamsHeader())
}
