package device

import (
	"pimeval/internal/cmdstream"
	"pimeval/internal/fault"
	"pimeval/internal/isa"
	"pimeval/internal/perf"
	"pimeval/internal/stats"
)

// pipeline is the staged dispatch path every device operation flows through:
//
//	validate → lower to cmdstream record → functional backend → cost model
//	         → fan-out to sinks (stats, trace, recorder, extras)
//
// Validation and the functional backend live with the entry points (exec.go,
// copy.go); the pipeline owns lowering, cost finalization, and fan-out. The
// built-in sinks are concrete fields so the hot path pays no interface
// dispatch, and the IR record is only materialized when a record-consuming
// sink is attached.
type pipeline struct {
	stats    statsSink
	trace    traceSink
	recorder *recorderSink
	extra    []Sink
	// repeat is the WithRepeat factor charged to every operation (1 when
	// no scope is open).
	repeat int64
	// ev is the reusable event buffer. Device dispatch is single-threaded
	// (only the functional element loops fan out), so one buffer serves
	// every dispatch without allocating.
	ev Event
}

// init wires the pipeline to a fresh statistics collector.
func (p *pipeline) init(st *stats.Stats) {
	p.stats.st = st
	p.repeat = 1
}

// wantRecord reports whether any attached sink consumes IR records; when
// false, the lowering stage is skipped entirely (the built-in stats and
// trace sinks read only the event's flat fields).
func (p *pipeline) wantRecord() bool { return p.recorder != nil || len(p.extra) > 0 }

// emit fans a finished event out to every sink.
func (p *pipeline) emit(ev *Event) {
	p.stats.Emit(ev)
	p.trace.Emit(ev)
	if p.recorder != nil {
		p.recorder.Emit(ev)
	}
	for _, s := range p.extra {
		s.Emit(ev)
	}
}

// begin resets the reusable event buffer for a new dispatch.
func (d *Device) begin(class EventClass) *Event {
	ev := &d.pipe.ev
	*ev = Event{Class: class}
	return ev
}

// lowerAlloc emits the structural record for a completed allocation.
func (d *Device) lowerAlloc(o *Object) {
	if !d.pipe.wantRecord() {
		return
	}
	ev := d.begin(ClassStructural)
	ev.Record = cmdstream.Record{
		Kind: cmdstream.KindAlloc, Obj: int64(o.id), Type: o.dt.String(), N: o.n,
	}
	d.pipe.emit(ev)
}

// lowerFree emits the structural record for a completed free.
func (d *Device) lowerFree(id ObjID) {
	if !d.pipe.wantRecord() {
		return
	}
	ev := d.begin(ClassStructural)
	ev.Record = cmdstream.Record{Kind: cmdstream.KindFree, Obj: int64(id)}
	d.pipe.emit(ev)
}

// lowerRepeatBegin opens a repeat scope in the stream.
func (d *Device) lowerRepeatBegin(n int64) {
	if !d.pipe.wantRecord() {
		return
	}
	ev := d.begin(ClassStructural)
	ev.Record = cmdstream.Record{Kind: cmdstream.KindRepeatBegin, Repeat: n}
	d.pipe.emit(ev)
}

// lowerRepeatEnd closes the innermost repeat scope in the stream.
func (d *Device) lowerRepeatEnd() {
	if !d.pipe.wantRecord() {
		return
	}
	ev := d.begin(ClassStructural)
	ev.Record = cmdstream.Record{Kind: cmdstream.KindRepeatEnd}
	d.pipe.emit(ev)
}

// finishExec runs the cost-model stage for a dispatched PIM command and fans
// the event out. The trace sees the raw per-dispatch cost (no background
// energy, no repeat scaling — one line per issued command); the statistics
// charge adds the module-wide background energy for the command's duration
// (paper Section V-D iii) and scales by the repeat factor.
func (d *Device) finishExec(ev *Event, cmd isa.Command, shape *Object) {
	cost := d.arch.CmdCost(cmd, shape.elemsPerCore, shape.activeCores, d.cfg.Module, d.em)
	if d.eccOn() {
		// SEC-DED widens every row access by 8 check bits per 64 data
		// bits; the overhead rides inside the command cost (trace and
		// stats both see it) and is also tracked separately.
		ecc := fault.ECCOverhead(cost)
		cost = cost.Plus(ecc)
		d.pipe.stats.st.RecordECC(ecc.Scale(float64(d.pipe.repeat)))
	}
	ev.Name = cmd.Name()
	ev.N = cmd.N
	ev.TraceCost = cost
	ev.Reps = d.pipe.repeat
	ev.Category = cmd.Op.Category()
	total := d.cfg.Module.Geometry.TotalSubarrays()
	cost.EnergyPJ += d.em.BackgroundEnergyPJ(total, cost.TimeNS)
	ev.Cost = cost.Scale(float64(d.pipe.repeat))
	d.pipe.emit(ev)
}

// finishCopy fans out a data-movement event. cost and the traffic counters
// arrive already scaled by the repeat factor; the trace shows the scaled
// cost with the unscaled byte count, matching the pre-pipeline simulator.
func (d *Device) finishCopy(ev *Event, name string, n int64, cost perf.Cost, h2d, d2h, d2d int64) {
	if d.eccOn() {
		// cost arrives repeat-scaled, so the ECC share is too.
		ecc := fault.ECCOverhead(cost)
		cost = cost.Plus(ecc)
		d.pipe.stats.st.RecordECC(ecc)
	}
	ev.Name = name
	ev.N = n
	ev.TraceCost = cost
	ev.Reps = d.pipe.repeat
	ev.Cost = cost
	ev.H2D, ev.D2H, ev.D2D = h2d, d2h, d2d
	d.pipe.emit(ev)
}
