package device

import (
	"fmt"
	"io"

	"pimeval/internal/cmdstream"
	"pimeval/internal/perf"
)

// CopyHostToDevice loads values into the object (the functional payload is
// required to match the object's length). In model-only mode only the
// transfer is charged.
func (d *Device) CopyHostToDevice(id ObjID, values []int64) (err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return err
	}
	o, err := d.res.lookup(id)
	if err != nil {
		return err
	}
	if d.cfg.Functional {
		if int64(len(values)) != o.n {
			return fmt.Errorf("%w: copy of %d values into object of %d", ErrShapeMismatch, len(values), o.n)
		}
		err = d.forSpans(o, func(lo, hi int64) {
			for i := lo; i < hi; i++ {
				o.data[i] = o.dt.Truncate(values[i])
			}
		})
		if err != nil {
			return err
		}
	}
	ev := d.begin(ClassCopy)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{Kind: cmdstream.KindCopyH2D, Obj: int64(id)}
		if d.cfg.Functional {
			// Functional recordings carry the payload so a replay
			// reconstructs the same device data; the copy detaches the
			// record from the caller's slice. The payload is captured
			// pre-injection: replays re-run the fault stage at the same
			// sequence number and corrupt it identically.
			ev.Record.Data = append([]int64(nil), values...)
		}
	}
	ferr := d.injectWrite(o, 0, o.n)
	cost := perf.DataMovement(d.cfg.Module, o.Bytes(), false).Scale(float64(d.pipe.repeat))
	d.finishCopy(ev, "copy.h2d", o.Bytes(), cost, o.Bytes()*d.pipe.repeat, 0, 0)
	return ferr
}

// CopyHostToDeviceFrom is the chunked (out-of-core) form of
// CopyHostToDevice: next returns successive payload chunks and io.EOF at
// end, and each chunk is written into the object as it arrives, so a
// payload larger than memory streams straight from its source (a binary
// stream decoder, a file reader) into device storage. Chunks may be reused
// by next between calls. The operation's shape, cost, fault injection, and
// recorded form are identical to a CopyHostToDevice of the concatenated
// chunks — including that re-recording a functional replay materializes the
// payload into the new record.
func (d *Device) CopyHostToDeviceFrom(id ObjID, next func() ([]int64, error)) (err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return err
	}
	o, err := d.res.lookup(id)
	if err != nil {
		return err
	}
	wantData := d.pipe.wantRecord() && d.cfg.Functional
	var buffered []int64
	var off int64
	for {
		chunk, cerr := next()
		if cerr == io.EOF {
			break
		}
		if cerr != nil {
			return cerr
		}
		if d.cfg.Functional {
			if off+int64(len(chunk)) > o.n {
				return fmt.Errorf("%w: chunked copy of over %d values into object of %d",
					ErrShapeMismatch, off+int64(len(chunk)), o.n)
			}
			for i, v := range chunk {
				o.data[off+int64(i)] = o.dt.Truncate(v)
			}
		}
		if wantData {
			// The payload is captured pre-truncation and pre-injection,
			// exactly as CopyHostToDevice records it.
			buffered = append(buffered, chunk...)
		}
		off += int64(len(chunk))
	}
	if d.cfg.Functional && off != o.n {
		return fmt.Errorf("%w: chunked copy of %d values into object of %d", ErrShapeMismatch, off, o.n)
	}
	ev := d.begin(ClassCopy)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{Kind: cmdstream.KindCopyH2D, Obj: int64(id)}
		if d.cfg.Functional {
			ev.Record.Data = buffered
		}
	}
	ferr := d.injectWrite(o, 0, o.n)
	cost := perf.DataMovement(d.cfg.Module, o.Bytes(), false).Scale(float64(d.pipe.repeat))
	d.finishCopy(ev, "copy.h2d", o.Bytes(), cost, o.Bytes()*d.pipe.repeat, 0, 0)
	return ferr
}

// CopyDeviceToHost copies the object's values out. In model-only mode it
// returns nil data after charging the transfer.
func (d *Device) CopyDeviceToHost(id ObjID) (_ []int64, err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return nil, err
	}
	o, err := d.res.lookup(id)
	if err != nil {
		return nil, err
	}
	ev := d.begin(ClassCopy)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{Kind: cmdstream.KindCopyD2H, Obj: int64(id)}
	}
	cost := perf.DataMovement(d.cfg.Module, o.Bytes(), true).Scale(float64(d.pipe.repeat))
	d.finishCopy(ev, "copy.d2h", o.Bytes(), cost, 0, o.Bytes()*d.pipe.repeat, 0)
	if !d.cfg.Functional {
		return nil, nil
	}
	out := make([]int64, o.n)
	copy(out, o.data)
	return out, nil
}

// CopyDeviceToDevice copies src into dst. If dst is larger, src is tiled
// (replicated) to fill it — the mechanism GEMV-style kernels use to
// broadcast a vector across matrix rows.
func (d *Device) CopyDeviceToDevice(src, dst ObjID) (err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return err
	}
	s, err := d.res.lookup(src)
	if err != nil {
		return err
	}
	t, err := d.res.lookup(dst)
	if err != nil {
		return err
	}
	if s.dt != t.dt {
		return fmt.Errorf("%w: d2d between %v and %v", ErrShapeMismatch, s.dt, t.dt)
	}
	if t.n%s.n != 0 {
		return fmt.Errorf("%w: dst length %d not a multiple of src length %d", ErrShapeMismatch, t.n, s.n)
	}
	if d.cfg.Functional {
		for i := int64(0); i < t.n; i += s.n {
			copy(t.data[i:i+s.n], s.data)
		}
	}
	var cost perf.Cost
	var volume int64
	if t.n > s.n {
		// Replicating a small operand across a large object is a
		// broadcast: the controller transmits the source once over the
		// shared bus and every core writes its local rows in parallel.
		g := d.cfg.Module.Geometry
		rowsPerCore := float64(t.elemsPerCore*int64(t.dt.Bits())+int64(g.ColsPerRow)-1) /
			float64(g.ColsPerRow)
		cost = perf.DataMovement(d.cfg.Module, s.Bytes(), false)
		cost.TimeNS += rowsPerCore * d.cfg.Module.Timing.RowWriteNS
		cost.EnergyPJ += rowsPerCore * d.em.RowWritePJ() * float64(t.activeCores)
		volume = s.Bytes()
	} else {
		// A same-size move travels over the module's internal buses at
		// rank bandwidth.
		cost = perf.DataMovement(d.cfg.Module, t.Bytes(), false)
		volume = t.Bytes()
	}
	cost = cost.Scale(float64(d.pipe.repeat))
	ev := d.begin(ClassCopy)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{Kind: cmdstream.KindCopyD2D, Src: int64(src), Dst: int64(dst)}
	}
	ferr := d.injectWrite(t, 0, t.n)
	d.finishCopy(ev, "copy.d2d", volume, cost, 0, 0, volume*d.pipe.repeat)
	return ferr
}

// CopyDeviceToDeviceRange copies n elements from src starting at srcOff
// into dst starting at dstOff — the gather primitive graph kernels use to
// assemble row batches from a resident adjacency matrix.
func (d *Device) CopyDeviceToDeviceRange(src ObjID, srcOff int64, dst ObjID, dstOff, n int64) (err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return err
	}
	s, err := d.res.lookup(src)
	if err != nil {
		return err
	}
	t, err := d.res.lookup(dst)
	if err != nil {
		return err
	}
	if s.dt != t.dt {
		return fmt.Errorf("%w: ranged d2d between %v and %v", ErrShapeMismatch, s.dt, t.dt)
	}
	if n <= 0 || srcOff < 0 || dstOff < 0 || srcOff+n > s.n || dstOff+n > t.n {
		return fmt.Errorf("%w: ranged d2d [%d,%d)->[%d,%d) outside objects of %d/%d",
			ErrBadArgument, srcOff, srcOff+n, dstOff, dstOff+n, s.n, t.n)
	}
	if d.cfg.Functional {
		copy(t.data[dstOff:dstOff+n], s.data[srcOff:srcOff+n])
	}
	bytes := n * int64(t.dt.Bytes())
	cost := perf.DataMovement(d.cfg.Module, bytes, false).Scale(float64(d.pipe.repeat))
	ev := d.begin(ClassCopy)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{
			Kind: cmdstream.KindCopyD2DRange,
			Src:  int64(src), SrcOff: srcOff, Dst: int64(dst), DstOff: dstOff, N: n,
		}
	}
	ferr := d.injectWrite(t, dstOff, dstOff+n)
	d.finishCopy(ev, "copy.d2d", bytes, cost, 0, 0, bytes*d.pipe.repeat)
	return ferr
}

// RecordHost charges a host-executed phase to the device's statistics.
func (d *Device) RecordHost(cost perf.Cost) {
	ev := d.begin(ClassHost)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{
			Kind: cmdstream.KindHost, TimeNS: cost.TimeNS, EnergyPJ: cost.EnergyPJ,
		}
	}
	ev.Reps = d.pipe.repeat
	ev.Cost = cost.Scale(float64(d.pipe.repeat))
	d.pipe.emit(ev)
}
