package device

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pimeval/internal/isa"
)

// execHarness allocates operands on a small functional device.
type execHarness struct {
	t *testing.T
	d *Device
}

func newHarness(t *testing.T, tgt Target) *execHarness {
	return &execHarness{t: t, d: newDev(t, tgt)}
}

func (h *execHarness) obj(dt isa.DataType, vals []int64) ObjID {
	h.t.Helper()
	id, err := h.d.Alloc(int64(len(vals)), dt)
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.d.CopyHostToDevice(id, vals); err != nil {
		h.t.Fatal(err)
	}
	return id
}

func (h *execHarness) read(id ObjID) []int64 {
	h.t.Helper()
	out, err := h.d.CopyDeviceToHost(id)
	if err != nil {
		h.t.Fatal(err)
	}
	return out
}

func TestExecBinaryAllOpsAllTargets(t *testing.T) {
	a := []int64{5, -7, 100, 0, -1, 127, -128, 63}
	b := []int64{3, -7, -100, 0, 1, 1, -1, 64}
	type want struct {
		op   isa.Op
		vals []int64
	}
	wants := []want{
		{isa.OpAdd, []int64{8, -14, 0, 0, 0, -128, 127, 127}}, // int8 wraparound
		{isa.OpSub, []int64{2, 0, -56, 0, -2, 126, -127, -1}},
		{isa.OpMul, []int64{15, 49, -16, 0, -1, 127, -128, -64}},
		{isa.OpMin, []int64{3, -7, -100, 0, -1, 1, -128, 63}},
		{isa.OpMax, []int64{5, -7, 100, 0, 1, 127, -1, 64}},
		{isa.OpLt, []int64{0, 0, 0, 0, 1, 0, 1, 1}},
		{isa.OpGt, []int64{1, 0, 1, 0, 0, 1, 0, 0}},
		{isa.OpEq, []int64{0, 1, 0, 1, 0, 0, 0, 0}},
		{isa.OpAnd, []int64{1, -7, 4, 0, 1, 1, -128, 0}},
		{isa.OpOr, []int64{7, -7, -4, 0, -1, 127, -1, 127}},
		{isa.OpXor, []int64{6, 0, -8, 0, -2, 126, 127, 127}},
	}
	for _, tgt := range allTargets {
		for _, w := range wants {
			h := newHarness(t, tgt)
			ao, bo := h.obj(isa.Int8, a), h.obj(isa.Int8, b)
			dst, _ := h.d.AllocAssociated(ao, isa.Int8)
			if err := h.d.ExecBinary(w.op, ao, bo, dst); err != nil {
				t.Fatalf("%v/%v: %v", tgt, w.op, err)
			}
			got := h.read(dst)
			for i := range w.vals {
				if got[i] != w.vals[i] {
					t.Errorf("%v %v.int8[%d](%d,%d) = %d, want %d", tgt, w.op, i, a[i], b[i], got[i], w.vals[i])
				}
			}
		}
	}
}

func TestExecScalar(t *testing.T) {
	h := newHarness(t, TargetFulcrum)
	a := h.obj(isa.Int32, []int64{10, -20, 30})
	dst, _ := h.d.AllocAssociated(a, isa.Int32)
	if err := h.d.ExecScalar(isa.OpMul, a, 3, dst); err != nil {
		t.Fatal(err)
	}
	got := h.read(dst)
	for i, want := range []int64{30, -60, 90} {
		if got[i] != want {
			t.Errorf("mul-scalar[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestExecUnaryAndShift(t *testing.T) {
	h := newHarness(t, TargetBitSerial)
	a := h.obj(isa.Int16, []int64{-5, 5, 0, -32768, 0x0F0F})
	dst, _ := h.d.AllocAssociated(a, isa.Int16)

	if err := h.d.ExecUnary(isa.OpAbs, a, dst); err != nil {
		t.Fatal(err)
	}
	got := h.read(dst)
	for i, want := range []int64{5, 5, 0, -32768, 0x0F0F} { // |INT16_MIN| wraps
		if got[i] != want {
			t.Errorf("abs[%d] = %d, want %d", i, got[i], want)
		}
	}

	if err := h.d.ExecUnary(isa.OpPopCount, a, dst); err != nil {
		t.Fatal(err)
	}
	got = h.read(dst)
	for i, want := range []int64{15, 2, 0, 1, 8} {
		if got[i] != want {
			t.Errorf("popcount[%d] = %d, want %d", i, got[i], want)
		}
	}

	if err := h.d.ExecShift(isa.OpShiftR, a, 2, dst); err != nil {
		t.Fatal(err)
	}
	got = h.read(dst)
	for i, want := range []int64{-2, 1, 0, -8192, 0x03C3} { // arithmetic shift
		if got[i] != want {
			t.Errorf("sar[%d] = %d, want %d", i, got[i], want)
		}
	}

	if err := h.d.ExecShift(isa.OpShiftL, a, 3, dst); err != nil {
		t.Fatal(err)
	}
	got = h.read(dst)
	for i, want := range []int64{-40, 40, 0, 0, 0x7878} {
		if got[i] != want {
			t.Errorf("shl[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestUnsignedSemantics(t *testing.T) {
	h := newHarness(t, TargetFulcrum)
	a := h.obj(isa.UInt8, []int64{200, 100, 255})
	b := h.obj(isa.UInt8, []int64{100, 200, 1})
	dst, _ := h.d.AllocAssociated(a, isa.UInt8)

	if err := h.d.ExecBinary(isa.OpLt, a, b, dst); err != nil {
		t.Fatal(err)
	}
	got := h.read(dst)
	for i, want := range []int64{0, 1, 0} { // unsigned compare
		if got[i] != want {
			t.Errorf("lt.uint8[%d] = %d, want %d", i, got[i], want)
		}
	}

	if err := h.d.ExecShift(isa.OpShiftR, a, 1, dst); err != nil {
		t.Fatal(err)
	}
	got = h.read(dst)
	for i, want := range []int64{100, 50, 127} { // logical shift
		if got[i] != want {
			t.Errorf("shr.uint8[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestSelectAndBroadcast(t *testing.T) {
	h := newHarness(t, TargetBankLevel)
	mask := h.obj(isa.Int32, []int64{1, 0, 1, 0})
	a := h.obj(isa.Int32, []int64{10, 20, 30, 40})
	b := h.obj(isa.Int32, []int64{-1, -2, -3, -4})
	dst, _ := h.d.AllocAssociated(a, isa.Int32)
	if err := h.d.ExecSelect(mask, a, b, dst); err != nil {
		t.Fatal(err)
	}
	got := h.read(dst)
	for i, want := range []int64{10, -2, 30, -4} {
		if got[i] != want {
			t.Errorf("select[%d] = %d, want %d", i, got[i], want)
		}
	}
	if err := h.d.Broadcast(dst, 42); err != nil {
		t.Fatal(err)
	}
	for i, v := range h.read(dst) {
		if v != 42 {
			t.Errorf("broadcast[%d] = %d", i, v)
		}
	}
}

func TestReductions(t *testing.T) {
	for _, tgt := range allTargets {
		h := newHarness(t, tgt)
		a := h.obj(isa.Int32, []int64{1, 2, 3, 4, 5, 6, 7, 8})
		sum, err := h.d.RedSum(a)
		if err != nil {
			t.Fatal(err)
		}
		if sum != 36 {
			t.Errorf("%v: RedSum = %d, want 36", tgt, sum)
		}
		segs, err := h.d.RedSumSeg(a, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != 2 || segs[0] != 10 || segs[1] != 26 {
			t.Errorf("%v: RedSumSeg = %v", tgt, segs)
		}
		if _, err := h.d.RedSumSeg(a, 3); !errors.Is(err, ErrBadArgument) {
			t.Errorf("%v: uneven segments: %v", tgt, err)
		}
		if _, err := h.d.RedSumSeg(a, 0); !errors.Is(err, ErrBadArgument) {
			t.Errorf("%v: zero segment: %v", tgt, err)
		}
	}
}

func TestRedSumNegativeAndUnsigned(t *testing.T) {
	h := newHarness(t, TargetBitSerial)
	a := h.obj(isa.Int32, []int64{-10, 4, -1})
	if sum, _ := h.d.RedSum(a); sum != -7 {
		t.Errorf("signed RedSum = %d, want -7", sum)
	}
	u := h.obj(isa.UInt8, []int64{255, 255})
	if sum, _ := h.d.RedSum(u); sum != 510 {
		t.Errorf("unsigned RedSum = %d, want 510", sum)
	}
}

func TestExecErrors(t *testing.T) {
	h := newHarness(t, TargetFulcrum)
	a := h.obj(isa.Int32, []int64{1, 2})
	short := h.obj(isa.Int32, []int64{1})
	other := h.obj(isa.Int16, []int64{1, 2})
	dst, _ := h.d.AllocAssociated(a, isa.Int32)

	if err := h.d.ExecBinary(isa.OpAdd, a, short, dst); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("length mismatch: %v", err)
	}
	if err := h.d.ExecBinary(isa.OpAdd, a, other, dst); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("type mismatch: %v", err)
	}
	if err := h.d.ExecBinary(isa.OpSelect, a, a, dst); !errors.Is(err, ErrBadArgument) {
		t.Errorf("select via ExecBinary: %v", err)
	}
	if err := h.d.ExecUnary(isa.OpAdd, a, dst); !errors.Is(err, ErrBadArgument) {
		t.Errorf("add via ExecUnary: %v", err)
	}
	if err := h.d.ExecShift(isa.OpAdd, a, 1, dst); !errors.Is(err, ErrBadArgument) {
		t.Errorf("add via ExecShift: %v", err)
	}
	if err := h.d.ExecShift(isa.OpShiftL, a, -1, dst); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative shift: %v", err)
	}
	if err := h.d.ExecBinary(isa.OpAdd, ObjID(9999), a, dst); !errors.Is(err, ErrBadObject) {
		t.Errorf("bad object: %v", err)
	}
}

// TestCrossArchitectureAgreement is the functional-verification property at
// the device level: all three architectures must compute identical results
// for identical programs (the paper's functional verification compares
// against a CPU reference; here each architecture also verifies the others).
func TestCrossArchitectureAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpMin, isa.OpMax, isa.OpLt, isa.OpXor}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i], b[i] = r.Int63()-r.Int63(), r.Int63()-r.Int63()
		}
		op := ops[r.Intn(len(ops))]
		var first []int64
		for _, tgt := range allTargets {
			h := newHarness(t, tgt)
			ao, bo := h.obj(isa.Int32, a), h.obj(isa.Int32, b)
			dst, _ := h.d.AllocAssociated(ao, isa.Int32)
			if err := h.d.ExecBinary(op, ao, bo, dst); err != nil {
				return false
			}
			got := h.read(dst)
			if first == nil {
				first = got
				continue
			}
			for i := range got {
				if got[i] != first[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestDeviceAgainstMicroOpEngine cross-checks the device's word-level
// functional execution against the bit-serial micro-op interpreter for a
// sample of operations — tying the fast simulation path to the
// gate-accurate one.
func TestDeviceAgainstMicroOpEngine(t *testing.T) {
	// The bitserial package's own tests validate microprograms against
	// word-level references identical to the device kernels; here we check
	// the device side on the same vectors used there.
	h := newHarness(t, TargetBitSerial)
	a := []int64{0, 1, -1, 127, -128, 55, -56, 3}
	b := []int64{1, 1, -1, 1, -1, -5, 7, -3}
	ao, bo := h.obj(isa.Int8, a), h.obj(isa.Int8, b)
	dst, _ := h.d.AllocAssociated(ao, isa.Int8)
	if err := h.d.ExecBinary(isa.OpMul, ao, bo, dst); err != nil {
		t.Fatal(err)
	}
	got := h.read(dst)
	for i := range a {
		want := isa.Int8.Truncate(isa.Int8.Truncate(a[i]) * isa.Int8.Truncate(b[i]))
		if got[i] != want {
			t.Errorf("mul.int8[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestKernelCostsDifferAcrossTargets(t *testing.T) {
	times := make(map[Target]float64)
	for _, tgt := range allTargets {
		h := newHarness(t, tgt)
		n := 1 << 12
		vals := make([]int64, n)
		a, b := h.obj(isa.Int32, vals), h.obj(isa.Int32, vals)
		dst, _ := h.d.AllocAssociated(a, isa.Int32)
		if err := h.d.ExecBinary(isa.OpMul, a, b, dst); err != nil {
			t.Fatal(err)
		}
		times[tgt] = h.d.Stats().Kernel().TimeNS
		if times[tgt] <= 0 {
			t.Fatalf("%v: zero kernel time", tgt)
		}
	}
	if times[TargetFulcrum] == times[TargetBitSerial] || times[TargetFulcrum] == times[TargetBankLevel] {
		t.Errorf("targets share identical mul cost: %v", times)
	}
}
