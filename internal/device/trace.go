package device

import (
	"fmt"
	"strings"

	"pimeval/internal/perf"
)

// TraceEntry records one dispatched command or copy for inspection.
type TraceEntry struct {
	Seq  int64
	Name string // command mnemonic or copy direction
	N    int64  // elements processed / bytes moved
	Reps int64  // WithRepeat multiplier in effect
	Cost perf.Cost
}

// String renders the entry as one trace line.
func (e TraceEntry) String() string {
	reps := ""
	if e.Reps > 1 {
		reps = fmt.Sprintf(" x%d", e.Reps)
	}
	return fmt.Sprintf("%6d  %-16s n=%-12d%s  %.3f us  %.3f uJ",
		e.Seq, e.Name, e.N, reps, e.Cost.TimeNS/1e3, e.Cost.EnergyPJ/1e6)
}

// traceLimit bounds the retained trace so paper-scale runs with hundreds of
// thousands of commands keep only the most recent window.
const traceLimit = 1 << 16

// EnableTrace starts recording dispatched commands and copies. The trace
// retains the most recent 64Ki entries.
func (d *Device) EnableTrace() { d.tracing = true }

// DisableTrace stops recording (the collected trace is kept).
func (d *Device) DisableTrace() { d.tracing = false }

// Trace returns the recorded entries in dispatch order.
func (d *Device) Trace() []TraceEntry {
	return append([]TraceEntry(nil), d.trace...)
}

// TraceString renders the whole trace.
func (d *Device) TraceString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s  %-16s %-15s %10s %10s\n", "seq", "command", "elements", "time", "energy")
	for _, e := range d.trace {
		fmt.Fprintln(&b, e.String())
	}
	return b.String()
}

// record appends a trace entry when tracing is enabled.
func (d *Device) record(name string, n int64, cost perf.Cost) {
	if !d.tracing {
		return
	}
	d.traceSeq++
	if len(d.trace) >= traceLimit {
		copy(d.trace, d.trace[1:])
		d.trace = d.trace[:len(d.trace)-1]
	}
	d.trace = append(d.trace, TraceEntry{
		Seq: d.traceSeq, Name: name, N: n, Reps: d.repeat, Cost: cost,
	})
}
