package device

import (
	"fmt"
	"strings"

	"pimeval/internal/perf"
)

// TraceEntry records one dispatched command or copy for inspection.
type TraceEntry struct {
	Seq  int64
	Name string // command mnemonic or copy direction
	N    int64  // elements processed / bytes moved
	Reps int64  // WithRepeat multiplier in effect
	Cost perf.Cost
}

// String renders the entry as one trace line.
func (e TraceEntry) String() string {
	reps := ""
	if e.Reps > 1 {
		reps = fmt.Sprintf(" x%d", e.Reps)
	}
	return fmt.Sprintf("%6d  %-16s n=%-12d%s  %.3f us  %.3f uJ",
		e.Seq, e.Name, e.N, reps, e.Cost.TimeNS/1e3, e.Cost.EnergyPJ/1e6)
}

// traceLimit bounds the retained trace so paper-scale runs with hundreds of
// thousands of commands keep only the most recent window.
const traceLimit = 1 << 16

// traceSink is the pipeline sink behind the command trace: it renders exec
// and copy events into trace entries while enabled, keeping the most recent
// traceLimit entries. Sequence numbers advance only while tracing is on.
type traceSink struct {
	tracing bool
	seq     int64
	entries []TraceEntry
}

// Emit appends a trace entry for traceable (named) events while enabled.
func (t *traceSink) Emit(ev *Event) {
	if !t.tracing || ev.Name == "" {
		return
	}
	t.seq++
	if len(t.entries) >= traceLimit {
		copy(t.entries, t.entries[1:])
		t.entries = t.entries[:len(t.entries)-1]
	}
	t.entries = append(t.entries, TraceEntry{
		Seq: t.seq, Name: ev.Name, N: ev.N, Reps: ev.Reps, Cost: ev.TraceCost,
	})
}

// EnableTrace starts recording dispatched commands and copies. The trace
// retains the most recent 64Ki entries.
func (d *Device) EnableTrace() { d.pipe.trace.tracing = true }

// DisableTrace stops recording (the collected trace is kept).
func (d *Device) DisableTrace() { d.pipe.trace.tracing = false }

// Trace returns the recorded entries in dispatch order.
func (d *Device) Trace() []TraceEntry {
	return append([]TraceEntry(nil), d.pipe.trace.entries...)
}

// TraceString renders the whole trace.
func (d *Device) TraceString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s  %-16s %-15s %10s %10s\n", "seq", "command", "elements", "time", "energy")
	for _, e := range d.pipe.trace.entries {
		fmt.Fprintln(&b, e.String())
	}
	return b.String()
}
