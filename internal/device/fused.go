package device

import (
	"fmt"

	"pimeval/internal/cmdstream"
	"pimeval/internal/isa"
	"pimeval/internal/kernels"
)

// fusedUnaryOps is the unary op set legal as a fused second stage. Sbox and
// its inverse are excluded: they carry an 8-bit-only constraint and have no
// composed bit-serial program, so the optimizer never emits them fused.
var fusedUnaryOps = map[isa.Op]bool{
	isa.OpNot: true, isa.OpAbs: true, isa.OpPopCount: true,
}

// ExecFused dispatches a two-stage fused element-wise command produced by
// the stream optimizer: stage 1 (binary or scalar form) feeds stage 2
// (unary, scalar, or binary form) through an unmaterialized intermediate,
// and only the final result is written to f.Dst. All operands must share
// length and element type; f.Dst may alias an input. The command is charged
// as one dispatch on the architecture model, which on the word-parallel
// targets is strictly cheaper than the sequential pair (one fewer row-write
// round) and on the bit-serial targets exactly matches it.
func (d *Device) ExecFused(f cmdstream.Fused) (err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return err
	}
	if f.Form1 != cmdstream.FormBinary && f.Form1 != cmdstream.FormScalar {
		return fmt.Errorf("%w: fused stage 1 form %q", ErrBadArgument, f.Form1)
	}
	if !binaryOps[f.Op1] {
		return fmt.Errorf("%w: %v is not an element-wise binary op", ErrBadArgument, f.Op1)
	}
	switch f.Form2 {
	case cmdstream.FormUnary:
		if !fusedUnaryOps[f.Op2] {
			return fmt.Errorf("%w: %v is not a fusable unary op", ErrBadArgument, f.Op2)
		}
	case cmdstream.FormScalar:
		if !binaryOps[f.Op2] {
			return fmt.Errorf("%w: %v is not an element-wise binary op", ErrBadArgument, f.Op2)
		}
	case cmdstream.FormBinary:
		if !binaryOps[f.Op2] {
			return fmt.Errorf("%w: %v is not an element-wise binary op", ErrBadArgument, f.Op2)
		}
		if f.Form1 != cmdstream.FormScalar {
			return fmt.Errorf("%w: fused binary second stage requires a scalar first stage", ErrBadArgument)
		}
	default:
		return fmt.Errorf("%w: fused stage 2 form %q", ErrBadArgument, f.Form2)
	}
	ao, err := d.obj(f.A)
	if err != nil {
		return err
	}
	do, err := d.obj(f.Dst)
	if err != nil {
		return err
	}
	// needB: one of the two stages is a true binary and reads f.B.
	needB := f.Form1 == cmdstream.FormBinary || f.Form2 == cmdstream.FormBinary
	var bo *Object
	if needB {
		if bo, err = d.obj(f.B); err != nil {
			return err
		}
		if bo.n != ao.n || bo.dt != ao.dt {
			return fmt.Errorf("%w: inputs (%d,%v) vs (%d,%v)", ErrShapeMismatch, ao.n, ao.dt, bo.n, bo.dt)
		}
	}
	if ao.n != do.n || ao.dt != do.dt {
		return fmt.Errorf("%w: dst (%d,%v) for inputs (%d,%v)", ErrShapeMismatch, do.n, do.dt, ao.n, ao.dt)
	}
	dt := ao.dt
	s1, s2 := dt.Truncate(f.S1), dt.Truncate(f.S2)
	ev := d.begin(ClassExec)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{
			Kind: cmdstream.KindExec, Form: cmdstream.FormFused,
			Form1: f.Form1, Form2: f.Form2,
			Op: f.Op1.String(), Op2: f.Op2.String(),
			Type: dt.String(), N: do.n,
			A: int64(f.A), Dst: int64(f.Dst),
			Scalar: f.S1, Scalar2: f.S2,
		}
		if needB {
			ev.Record.B = int64(f.B)
		}
	}
	if d.cfg.Functional {
		if err := d.fusedFunctional(f, ao, bo, do, s1, s2); err != nil {
			return err
		}
	}
	ferr := d.injectWrite(do, 0, do.n)
	inputs := 1
	if needB {
		inputs = 2
	}
	d.finishExec(ev, isa.Command{
		Op: f.Op1, Type: dt, N: do.n, Scalar: s1,
		Inputs: inputs, WritesResult: true,
		Fused: &isa.FusedStage{
			Op: f.Op2, Scalar: s2,
			ScalarForm:   f.Form2 == cmdstream.FormScalar,
			BinaryForm:   f.Form2 == cmdstream.FormBinary,
			Stage1Scalar: f.Form1 == cmdstream.FormScalar,
		},
	}, do)
	return ferr
}

// fusedFunctional runs the two stages over every span, resolving one fused
// kernel per command when available and falling back to the per-element
// reference composition (the golden semantics, forced by ReferenceEval).
func (d *Device) fusedFunctional(f cmdstream.Fused, ao, bo, do *Object, s1, s2 int64) error {
	dt := do.dt
	if !d.cfg.ReferenceEval {
		var bk kernels.BinaryKernel
		var uk kernels.UnaryKernel
		switch {
		case f.Form1 == cmdstream.FormBinary && f.Form2 == cmdstream.FormUnary:
			bk = kernels.FusedBinaryUnary(f.Op1, f.Op2, dt)
		case f.Form1 == cmdstream.FormBinary && f.Form2 == cmdstream.FormScalar:
			bk = kernels.FusedBinaryScalar(f.Op1, f.Op2, dt, s2)
		case f.Form1 == cmdstream.FormScalar && f.Form2 == cmdstream.FormBinary:
			bk = kernels.FusedScalarBinary(f.Op1, f.Op2, dt, s1)
		case f.Form1 == cmdstream.FormScalar && f.Form2 == cmdstream.FormScalar:
			uk = kernels.FusedScalarScalar(f.Op1, f.Op2, dt, s1, s2)
		case f.Form1 == cmdstream.FormScalar && f.Form2 == cmdstream.FormUnary:
			uk = kernels.FusedScalarUnary(f.Op1, f.Op2, dt, s1)
		}
		if bk != nil {
			return d.forSpans(do, func(lo, hi int64) { bk(do.data, ao.data, bo.data, lo, hi) })
		}
		if uk != nil {
			return d.forSpans(do, func(lo, hi int64) { uk(do.data, ao.data, lo, hi) })
		}
	}
	// Reference composition: stage 1 through a canonical intermediate,
	// exactly as the sequential pair of reference evaluators computes it.
	return d.forSpans(do, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			var t int64
			if f.Form1 == cmdstream.FormBinary {
				t = dt.Truncate(evalBinary(f.Op1, dt, ao.data[i], bo.data[i]))
			} else {
				t = dt.Truncate(evalBinary(f.Op1, dt, ao.data[i], s1))
			}
			switch f.Form2 {
			case cmdstream.FormUnary:
				do.data[i] = evalUnary(f.Op2, dt, t)
			case cmdstream.FormScalar:
				do.data[i] = dt.Truncate(evalBinary(f.Op2, dt, t, s2))
			default: // FormBinary
				do.data[i] = dt.Truncate(evalBinary(f.Op2, dt, t, bo.data[i]))
			}
		}
	})
}
