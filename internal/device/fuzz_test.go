package device

import (
	"math"
	"testing"

	"pimeval/internal/bitserial"
	"pimeval/internal/isa"
)

// The fuzz targets cross-check the functional simulator's scalar evaluators
// (evalBinary/evalDiv/evalShift) against the bit-serial microprogram
// interpreter: both views of the same operation must agree after
// normalization, for arbitrary operands including the signed edge cases
// (division by zero, MinInt/-1, shift amounts at or past the element width).
//
// The interpreter's ReadVertical is zero-extended while the device holds
// canonical sign-extended values, so both sides are compared through
// dt.Truncate.

var fuzzTypes = []isa.DataType{
	isa.Int8, isa.Int16, isa.Int32, isa.Int64,
	isa.UInt8, isa.UInt16, isa.UInt32, isa.UInt64,
}

// crossCheck runs one (op, dtype) pair through both the scalar evaluator and
// the compiled microprogram and fails on any mismatch. Compilation goes
// through the memoized BuildCached — the fuzz loop would otherwise recompile
// the same microprograms on every input, and sharing the cache with the cost
// model also exercises it from the fuzzer's goroutines.
func crossCheck(t *testing.T, op isa.Op, dt isa.DataType, imm int64, want func(a, b int64) int64, a, b int64) {
	t.Helper()
	a, b = dt.Truncate(a), dt.Truncate(b)
	p, err := bitserial.BuildCached(op, dt, imm)
	if err != nil {
		t.Fatalf("Build(%v, %v): %v", op, dt, err)
	}
	operands := [][]int64{{a}}
	if op != isa.OpShiftL && op != isa.OpShiftR {
		operands = append(operands, []int64{b})
	}
	got, err := bitserial.EvalElements(p, dt.Bits(), 1, operands, 1)
	if err != nil {
		t.Fatalf("EvalElements(%v, %v): %v", op, dt, err)
	}
	ref := want(a, b)
	if dt.Truncate(got[0]) != dt.Truncate(ref) {
		t.Errorf("%v.%v(a=%d, b=%d, imm=%d): microprogram=%d, evaluator=%d",
			op, dt, a, b, imm, dt.Truncate(got[0]), dt.Truncate(ref))
	}
}

// seedPairs are the known-treacherous operand pairs every fuzz target
// starts from.
func seedPairs(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(1), int64(0))              // division by zero
	f.Add(int64(math.MinInt64), int64(-1)) // MinInt / -1 wraparound
	f.Add(int64(math.MinInt8), int64(-1))  // same at 8-bit width
	f.Add(int64(-1), int64(math.MaxInt64)) // all-ones vs max
	f.Add(int64(math.MaxInt64), int64(1))  // overflow on add
	f.Add(int64(math.MinInt64), int64(math.MinInt64))
	f.Add(int64(0x8000_0000), int64(0x7FFF_FFFF))
	f.Add(int64(-128), int64(127))
}

func FuzzEvalBinary(f *testing.F) {
	seedPairs(f)
	ops := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpXnor, isa.OpMin, isa.OpMax, isa.OpLt, isa.OpGt, isa.OpEq,
	}
	f.Fuzz(func(t *testing.T, a, b int64) {
		for _, dt := range fuzzTypes {
			for _, op := range ops {
				op := op
				crossCheck(t, op, dt, 0, func(a, b int64) int64 {
					return evalBinary(op, dt, a, b)
				}, a, b)
			}
		}
	})
}

func FuzzEvalDiv(f *testing.F) {
	seedPairs(f)
	f.Fuzz(func(t *testing.T, a, b int64) {
		for _, dt := range fuzzTypes {
			dt := dt
			crossCheck(t, isa.OpDiv, dt, 0, func(a, b int64) int64 {
				return evalDiv(dt, a, b)
			}, a, b)
		}
	})
}

func FuzzEvalShift(f *testing.F) {
	seedPairs(f)
	f.Add(int64(math.MinInt64), int64(63))
	f.Add(int64(-1), int64(64)) // amount == width: result is 0 (or -1 for signed right shift)
	f.Add(int64(-1), int64(200))
	f.Fuzz(func(t *testing.T, a, rawAmount int64) {
		amount := int(rawAmount & 0x7F) // 0..127 covers < width, == width, and beyond
		for _, dt := range fuzzTypes {
			for _, op := range []isa.Op{isa.OpShiftL, isa.OpShiftR} {
				op, dt := op, dt
				crossCheck(t, op, dt, int64(amount), func(a, _ int64) int64 {
					return evalShift(op, dt, a, amount)
				}, a, 0)
			}
		}
	})
}
