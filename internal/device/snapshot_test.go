package device

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"pimeval/internal/chaos"
	"pimeval/internal/dram"
	"pimeval/internal/fault"
	"pimeval/internal/isa"
)

// snapVariant is one device configuration exercised by the snapshot battery.
type snapVariant struct {
	name       string
	functional bool
	trace      bool
	faults     *fault.Config
}

func snapVariants() []snapVariant {
	ecc := &fault.Config{Seed: 7, TransientBitRate: 1e-7, StuckBits: 2, ECC: true}
	corrupting := &fault.Config{Seed: 11, TransientBitRate: 1e-6, StuckBits: 1}
	return []snapVariant{
		{name: "model", functional: false, trace: true},
		{name: "functional", functional: true, trace: true},
		{name: "functional/notrace", functional: true, trace: false},
		{name: "functional/ecc", functional: true, trace: true, faults: ecc},
		{name: "functional/corrupting", functional: true, trace: true, faults: corrupting},
		{name: "model/ecc", functional: false, trace: true, faults: ecc},
	}
}

// snapValues yields a deterministic value pattern covering sign and width
// edge cases.
func snapValues(n int, k int64) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = (int64(i)*2654435761 + k) ^ (k << 13)
	}
	return vals
}

// buildSnapDevice constructs a device and drives it through a representative
// op history: allocations of several widths, copies, binary/scalar/unary
// execs, a repeat scope, a free (leaving a hole in the ID sequence), and a
// reallocation after the free.
func buildSnapDevice(t *testing.T, v snapVariant) *Device {
	t.Helper()
	d, err := New(Config{
		Target:     TargetFulcrum,
		Module:     dram.DDR4(1),
		Functional: v.functional,
		Workers:    1,
		Faults:     v.faults,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if v.trace {
		d.EnableTrace()
	}
	driveSnapOps(t, d, v.functional)
	return d
}

// driveSnapOps issues the battery's representative op history on d.
func driveSnapOps(t *testing.T, d *Device, functional bool) {
	t.Helper()
	const n = 257
	a, err := d.Alloc(n, isa.Int8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.AllocAssociated(a, isa.Int8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Alloc(n, isa.Int8)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := d.Alloc(64, isa.Int64)
	if err != nil {
		t.Fatal(err)
	}
	if functional {
		if err := d.CopyHostToDevice(a, snapValues(n, 3)); err != nil {
			t.Fatal(err)
		}
		if err := d.CopyHostToDevice(b, snapValues(n, 9)); err != nil {
			t.Fatal(err)
		}
		if err := d.CopyHostToDevice(wide, snapValues(64, 17)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ExecBinary(isa.OpAdd, a, b, c); err != nil {
		t.Fatal(err)
	}
	if err := d.ExecScalar(isa.OpMul, c, 3, c); err != nil {
		t.Fatal(err)
	}
	if err := d.WithRepeat(3, func() error {
		return d.ExecBinary(isa.OpXor, a, c, b)
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Broadcast(b, -5); err != nil {
		t.Fatal(err)
	}
	// Free one object (ID hole + freed-set entry), then allocate over it.
	if err := d.Free(c); err != nil {
		t.Fatal(err)
	}
	tail, err := d.Alloc(33, isa.UInt16)
	if err != nil {
		t.Fatal(err)
	}
	if functional {
		if err := d.CopyHostToDevice(tail, snapValues(33, 31)); err != nil {
			t.Fatal(err)
		}
	}
}

// continueOps drives further work on a device, exercising everything the
// restored state feeds: sequential ID assignment, fault injection sequence,
// stats accumulation, and trace numbering.
func continueOps(t *testing.T, d *Device) {
	t.Helper()
	x, err := d.Alloc(100, isa.Int32)
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.Functional {
		if err := d.CopyHostToDevice(x, snapValues(100, 41)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ExecScalar(isa.OpAdd, x, 7, x); err != nil {
		t.Fatal(err)
	}
	if err := d.ExecUnary(isa.OpNot, x, x); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RedSum(x); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(x); err != nil {
		t.Fatal(err)
	}
}

// fingerprint renders the complete observable and internal device state as a
// comparable string: report, trace, stats, fault counters, the object table
// (IDs, types, data), the freed set, and the ID counter.
func fingerprint(t *testing.T, d *Device) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(d.ReportString())
	sb.WriteString(d.TraceString())
	fmt.Fprintf(&sb, "stats=%+v\n", d.Stats().State())
	fmt.Fprintf(&sb, "faults=%+v\n", d.FaultCounts())
	fmt.Fprintf(&sb, "nextID=%d usedBits=%d\n", d.res.nextID, d.res.usedBits)
	ids := make([]ObjID, 0, len(d.res.objs))
	for id := range d.res.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := d.res.objs[id]
		fmt.Fprintf(&sb, "obj %d %v n=%d data=%v\n", id, o.dt, o.n, o.data)
	}
	freed := make([]ObjID, 0, len(d.res.freed))
	for id := range d.res.freed {
		freed = append(freed, id)
	}
	sort.Slice(freed, func(i, j int) bool { return freed[i] < freed[j] })
	fmt.Fprintf(&sb, "freed=%v\n", freed)
	return sb.String()
}

func snapshotBytes(t *testing.T, d *Device, cursor int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf, cursor); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTrip proves restore reproduces the device exactly — and
// that original and restored devices stay bit-identical through further
// operations (allocation IDs, fault sequence, stats, trace all continue in
// lockstep).
func TestSnapshotRoundTrip(t *testing.T) {
	for _, v := range snapVariants() {
		t.Run(v.name, func(t *testing.T) {
			d := buildSnapDevice(t, v)
			want := fingerprint(t, d)
			snap := snapshotBytes(t, d, 42)

			r, cursor, err := RestoreSnapshot(bytes.NewReader(snap), 1)
			if err != nil {
				t.Fatalf("RestoreSnapshot: %v", err)
			}
			if cursor != 42 {
				t.Fatalf("cursor = %d, want 42", cursor)
			}
			if got := fingerprint(t, r); got != want {
				t.Fatalf("restored state differs:\n--- original ---\n%s\n--- restored ---\n%s", want, got)
			}

			continueOps(t, d)
			continueOps(t, r)
			if got, want := fingerprint(t, r), fingerprint(t, d); got != want {
				t.Fatalf("post-restore divergence:\n--- original ---\n%s\n--- restored ---\n%s", want, got)
			}
		})
	}
}

// TestSnapshotByteStable proves Snapshot→Restore→Snapshot reproduces the
// exact snapshot bytes.
func TestSnapshotByteStable(t *testing.T) {
	for _, v := range snapVariants() {
		t.Run(v.name, func(t *testing.T) {
			d := buildSnapDevice(t, v)
			snap1 := snapshotBytes(t, d, 7)
			r, _, err := RestoreSnapshot(bytes.NewReader(snap1), 1)
			if err != nil {
				t.Fatalf("RestoreSnapshot: %v", err)
			}
			snap2 := snapshotBytes(t, r, 7)
			if !bytes.Equal(snap1, snap2) {
				t.Fatalf("snapshot not byte-stable: %d vs %d bytes", len(snap1), len(snap2))
			}
			// Snapshotting the same device twice is also deterministic.
			if snap3 := snapshotBytes(t, d, 7); !bytes.Equal(snap1, snap3) {
				t.Fatal("snapshot of unchanged device is not deterministic")
			}
		})
	}
}

// isSnapshotErr reports whether err wraps one of the snapshot sentinels.
func isSnapshotErr(err error) bool {
	return errors.Is(err, ErrSnapshotFormat) ||
		errors.Is(err, ErrSnapshotTruncated) ||
		errors.Is(err, ErrSnapshotCorrupt)
}

// TestSnapshotTruncationSweep feeds every proper prefix of a snapshot to the
// decoder: each must fail with a clean sentinel, never panic, never succeed.
func TestSnapshotTruncationSweep(t *testing.T) {
	v := snapVariant{name: "functional/ecc", functional: true, trace: true,
		faults: &fault.Config{Seed: 7, TransientBitRate: 1e-7, ECC: true}}
	snap := snapshotBytes(t, buildSnapDevice(t, v), 5)
	for n := 0; n < len(snap); n++ {
		_, _, err := RestoreSnapshot(bytes.NewReader(snap[:n]), 1)
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes restored successfully", n, len(snap))
		}
		if !isSnapshotErr(err) {
			t.Fatalf("prefix of %d bytes: non-sentinel error %v", n, err)
		}
	}
}

// TestSnapshotBitFlipSweep flips every bit of a snapshot in turn: the CRC
// framing guarantees every single-bit flip is detected, so each mutant must
// fail with a sentinel — never restore silently wrong.
func TestSnapshotBitFlipSweep(t *testing.T) {
	v := snapVariant{name: "functional", functional: true, trace: true}
	snap := snapshotBytes(t, buildSnapDevice(t, v), 5)
	if testing.Short() && len(snap) > 512 {
		snap = snap[:len(snap)] // sweep stays exhaustive; snapshots are ~KB
	}
	mut := make([]byte, len(snap))
	for i := 0; i < len(snap); i++ {
		for bit := 0; bit < 8; bit++ {
			copy(mut, snap)
			mut[i] ^= 1 << bit
			_, _, err := RestoreSnapshot(bytes.NewReader(mut), 1)
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d restored successfully", i, bit)
			}
			if !isSnapshotErr(err) {
				t.Fatalf("bit flip at byte %d bit %d: non-sentinel error %v", i, bit, err)
			}
		}
	}
}

// TestSnapshotGarbage feeds unstructured and half-structured garbage.
func TestSnapshotGarbage(t *testing.T) {
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() byte {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return byte(seed)
	}
	for length := 0; length < 256; length += 7 {
		buf := make([]byte, length)
		for i := range buf {
			buf[i] = next()
		}
		if _, _, err := RestoreSnapshot(bytes.NewReader(buf), 1); err == nil || !isSnapshotErr(err) {
			t.Fatalf("garbage of %d bytes: err = %v", length, err)
		}
		// Same tail behind a valid magic and version.
		framed := append([]byte(snapMagic+"\x01"), buf...)
		if _, _, err := RestoreSnapshot(bytes.NewReader(framed), 1); err == nil || !isSnapshotErr(err) {
			t.Fatalf("framed garbage of %d bytes: err = %v", length, err)
		}
	}
}

// TestSnapshotPreconditions covers states a snapshot may not be taken in.
func TestSnapshotPreconditions(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf, -1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative cursor: %v", err)
	}
	err := d.WithRepeat(2, func() error {
		return d.WriteSnapshot(&buf, 0)
	})
	if !errors.Is(err, ErrBadArgument) {
		t.Errorf("snapshot inside WithRepeat: %v", err)
	}
	d.StartRecording()
	if err := d.WriteSnapshot(&buf, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("snapshot while recording: %v", err)
	}
	d2 := newDev(t, TargetFulcrum)
	d2.AddSink(sinkFunc(func(*Event) {}))
	if err := d2.WriteSnapshot(&buf, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("snapshot with extra sink: %v", err)
	}
}

type sinkFunc func(*Event)

func (f sinkFunc) Emit(ev *Event) { f(ev) }

// failAfterWriter fails with a distinctive error once n bytes have been
// written.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		k := w.n
		w.n = 0
		return k, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// TestSnapshotWriterFailure proves write errors at every offset propagate
// cleanly out of WriteSnapshot.
func TestSnapshotWriterFailure(t *testing.T) {
	d := buildSnapDevice(t, snapVariant{functional: true, trace: true})
	full := snapshotBytes(t, d, 0)
	sentinel := errors.New("disk on fire")
	for n := 0; n < len(full); n += 13 {
		if err := d.WriteSnapshot(&failAfterWriter{n: n, err: sentinel}, 0); !errors.Is(err, sentinel) {
			t.Fatalf("fail after %d bytes: err = %v", n, err)
		}
	}
}

// TestSnapshotRestoreMismatchedWorkers proves worker count is observational:
// a snapshot taken on one worker restores on many and stays bit-identical.
func TestSnapshotRestoreMismatchedWorkers(t *testing.T) {
	v := snapVariant{functional: true, trace: true}
	d := buildSnapDevice(t, v)
	continueOps(t, d)
	snap := snapshotBytes(t, buildSnapDevice(t, v), 0)
	r, _, err := RestoreSnapshot(bytes.NewReader(snap), 4)
	if err != nil {
		t.Fatal(err)
	}
	continueOps(t, r)
	if got, want := fingerprint(t, r), fingerprint(t, d); got != want {
		t.Fatalf("restore with different workers diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestSnapshotChaosIO drives the snapshot codec through the chaos harness:
// torn writes at many boundaries propagate the injected error, short reads
// restore bit-identically, and a read budget fails with a clean sentinel.
func TestSnapshotChaosIO(t *testing.T) {
	d := buildSnapDevice(t, snapVariant{functional: true, trace: true})
	want := fingerprint(t, d)
	full := snapshotBytes(t, d, 3)

	for n := int64(0); n < int64(len(full)); n += 17 {
		w := &chaos.Writer{W: io.Discard, FailAfter: n, Torn: true}
		if err := d.WriteSnapshot(w, 3); !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("torn write at %d: err = %v", n, err)
		}
	}

	r, cursor, err := RestoreSnapshot(&chaos.Reader{
		R: bytes.NewReader(full), Rand: chaos.NewRand(5), FailAfter: -1,
	}, 1)
	if err != nil {
		t.Fatalf("restore under short reads: %v", err)
	}
	if cursor != 3 {
		t.Fatalf("cursor = %d", cursor)
	}
	if got := fingerprint(t, r); got != want {
		t.Fatal("short-read restore diverged")
	}

	for n := int64(0); n < int64(len(full)); n += 23 {
		_, _, err := RestoreSnapshot(&chaos.Reader{R: bytes.NewReader(full), FailAfter: n}, 1)
		if err == nil || !(isSnapshotErr(err) || errors.Is(err, chaos.ErrInjected)) {
			t.Fatalf("read budget %d: err = %v", n, err)
		}
	}
}
