package device

import (
	"bytes"
	"errors"
	"testing"

	"pimeval/internal/cmdstream"
	"pimeval/internal/dram"
)

// recordSnapStream drives the snapshot battery's op history on a recording
// device and returns the captured stream.
func recordSnapStream(t *testing.T, v snapVariant) *cmdstream.Stream {
	t.Helper()
	rec, err := New(Config{
		Target:     TargetFulcrum,
		Module:     dram.DDR4(1),
		Functional: v.functional,
		Workers:    1,
		Faults:     v.faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.StartRecording()
	driveSnapOps(t, rec, v.functional)
	s := rec.RecordedStream()
	if s == nil || len(s.Records) == 0 {
		t.Fatal("no records captured")
	}
	return s
}

// scopeDepths returns, for each record index i, the repeat-scope depth
// *after* consuming records [0, i).
func scopeDepths(s *cmdstream.Stream) []int {
	depths := make([]int, len(s.Records)+1)
	d := 0
	for i, r := range s.Records {
		depths[i] = d
		switch r.Kind {
		case cmdstream.KindRepeatBegin:
			d = 1
		case cmdstream.KindRepeatEnd:
			d = 0
		}
	}
	depths[len(s.Records)] = d
	return depths
}

// TestResumeFromEveryCheckpoint checkpoints a replay at every unit boundary,
// then restores each snapshot and replays the tail: every resumed device
// must be bit-identical to the uninterrupted replay.
func TestResumeFromEveryCheckpoint(t *testing.T) {
	for _, v := range snapVariants() {
		t.Run(v.name, func(t *testing.T) {
			stream := recordSnapStream(t, v)

			ref, err := NewFromStream(stream, 1)
			if err != nil {
				t.Fatal(err)
			}
			ref.EnableTrace()
			if err := ref.ReplaySource(cmdstream.FromStream(stream)); err != nil {
				t.Fatalf("reference replay: %v", err)
			}
			want := fingerprint(t, ref)

			// Checkpointed replay, snapshotting at every boundary.
			ckpt, err := NewFromStream(stream, 1)
			if err != nil {
				t.Fatal(err)
			}
			ckpt.EnableTrace()
			snaps := map[int64][]byte{}
			err = ckpt.ReplaySourceOpts(cmdstream.FromStream(stream), cmdstream.ReplayOptions{
				CheckpointEvery: 1,
				Checkpoint: func(cursor int64) error {
					var buf bytes.Buffer
					if err := ckpt.WriteSnapshot(&buf, cursor); err != nil {
						return err
					}
					snaps[cursor] = buf.Bytes()
					return nil
				},
			})
			if err != nil {
				t.Fatalf("checkpointed replay: %v", err)
			}
			if got := fingerprint(t, ckpt); got != want {
				t.Fatal("checkpointed replay diverged from reference")
			}
			if len(snaps) == 0 {
				t.Fatal("no checkpoints fired")
			}

			depths := scopeDepths(stream)
			for cursor, snap := range snaps {
				if cursor < 1 || cursor > int64(len(stream.Records)) {
					t.Fatalf("checkpoint cursor %d out of range", cursor)
				}
				if depths[cursor] != 0 {
					t.Fatalf("checkpoint cursor %d inside repeat scope", cursor)
				}
				r, err := ReplayFrom(bytes.NewReader(snap), cmdstream.FromStream(stream), 1, cmdstream.ReplayOptions{})
				if err != nil {
					t.Fatalf("ReplayFrom at cursor %d: %v", cursor, err)
				}
				if got := fingerprint(t, r); got != want {
					t.Fatalf("resume at cursor %d diverged from uninterrupted replay", cursor)
				}
			}
		})
	}
}

// TestResumeCheckpointCadence verifies the interval contract: at least
// CheckpointEvery records between callbacks, cursors strictly increasing.
func TestResumeCheckpointCadence(t *testing.T) {
	stream := recordSnapStream(t, snapVariant{functional: true})
	d, err := NewFromStream(stream, 1)
	if err != nil {
		t.Fatal(err)
	}
	var cursors []int64
	err = d.ReplaySourceOpts(cmdstream.FromStream(stream), cmdstream.ReplayOptions{
		CheckpointEvery: 3,
		Checkpoint: func(cursor int64) error {
			cursors = append(cursors, cursor)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cursors) == 0 {
		t.Fatal("no checkpoints fired")
	}
	prev := int64(0)
	for _, c := range cursors {
		if c-prev < 3 {
			t.Fatalf("checkpoints at %d and %d closer than interval", prev, c)
		}
		prev = c
	}
}

// TestResumeCheckpointError proves a checkpoint failure aborts the replay.
func TestResumeCheckpointError(t *testing.T) {
	stream := recordSnapStream(t, snapVariant{functional: true})
	d, err := NewFromStream(stream, 1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("checkpoint sink failed")
	err = d.ReplaySourceOpts(cmdstream.FromStream(stream), cmdstream.ReplayOptions{
		CheckpointEvery: 1,
		Checkpoint:      func(int64) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestResumeCursorValidation covers hostile or stale resume cursors.
func TestResumeCursorValidation(t *testing.T) {
	stream := recordSnapStream(t, snapVariant{functional: true})
	total := int64(len(stream.Records))
	depths := scopeDepths(stream)

	newReplayDev := func() *Device {
		d, err := NewFromStream(stream, 1)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	if err := newReplayDev().ReplaySourceOpts(cmdstream.FromStream(stream),
		cmdstream.ReplayOptions{Skip: -1}); err == nil {
		t.Error("negative skip accepted")
	}
	if err := newReplayDev().ReplaySourceOpts(cmdstream.FromStream(stream),
		cmdstream.ReplayOptions{CheckpointEvery: -1}); err == nil {
		t.Error("negative interval accepted")
	}
	err := newReplayDev().ReplaySourceOpts(cmdstream.FromStream(stream),
		cmdstream.ReplayOptions{Skip: total + 1})
	if !errors.Is(err, cmdstream.ErrTruncated) {
		t.Errorf("skip past end: %v", err)
	}
	// A cursor inside a repeat scope is structurally invalid.
	inScope := int64(-1)
	for i, d := range depths {
		if d != 0 {
			inScope = int64(i)
			break
		}
	}
	if inScope < 0 {
		t.Fatal("recorded stream has no repeat scope")
	}
	err = newReplayDev().ReplaySourceOpts(cmdstream.FromStream(stream),
		cmdstream.ReplayOptions{Skip: inScope})
	if !errors.Is(err, cmdstream.ErrFormat) {
		t.Errorf("skip into scope: %v", err)
	}
}

// TestResumeHeaderMismatch proves ReplayFrom rejects a stream recorded on a
// different device than the snapshot's.
func TestResumeHeaderMismatch(t *testing.T) {
	v := snapVariant{functional: true}
	stream := recordSnapStream(t, v)
	var snap bytes.Buffer
	if err := buildSnapDevice(t, v).WriteSnapshot(&snap, 0); err != nil {
		t.Fatal(err)
	}
	other := *stream
	other.Header.Target = TargetBitSerial.String()
	other.Header.TargetID = int(TargetBitSerial)
	if _, err := ReplayFrom(bytes.NewReader(snap.Bytes()), cmdstream.FromStream(&other), 1,
		cmdstream.ReplayOptions{}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("mismatched target accepted: %v", err)
	}
	modelHdr := stream.Header
	modelHdr.Functional = false
	if _, err := ReplayFrom(bytes.NewReader(snap.Bytes()),
		cmdstream.FromRecords(modelHdr, stream.Records), 1,
		cmdstream.ReplayOptions{}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("mismatched functional mode accepted: %v", err)
	}
}
