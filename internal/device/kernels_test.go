package device

import (
	"math"
	"math/rand"
	"testing"

	"pimeval/internal/dram"
	"pimeval/internal/isa"
	"pimeval/internal/kernels"
)

// Differential proof for the specialized element kernels: every (op, form,
// element type) kernel must be bit-identical to the golden per-element
// evaluators (evalBinary/evalUnary/evalShift) on vectors built from the
// arithmetic edge values — INT_MIN/-1, division by zero, shift amounts at
// and past the width, unsigned wraparound — plus seeded random operands.

// edgeValues are the treacherous operand values, truncated per type when
// vectors are built.
var edgeValues = []int64{
	0, 1, -1, 2, 3, -2,
	math.MinInt64, math.MaxInt64,
	math.MinInt32, math.MaxInt32, math.MinInt16, math.MaxInt16,
	math.MinInt8, math.MaxInt8,
	math.MaxUint8, math.MaxUint16, math.MaxUint32,
	0x5555_5555_5555_5555, -0x5555_5555_5555_5556, // alternating bit patterns
	1 << 31, 1 << 62,
}

// edgeVectors builds operand vectors for dt covering the full cross product
// of edge values (a gets each value repeated, b cycles) plus random tails.
func edgeVectors(dt isa.DataType, seed int64) (a, b []int64) {
	ne := len(edgeValues)
	n := ne*ne + 256
	a = make([]int64, n)
	b = make([]int64, n)
	for i := 0; i < ne*ne; i++ {
		a[i] = dt.Truncate(edgeValues[i/ne])
		b[i] = dt.Truncate(edgeValues[i%ne])
	}
	r := rand.New(rand.NewSource(seed))
	for i := ne * ne; i < n; i++ {
		a[i] = dt.Truncate(r.Int63() - r.Int63())
		b[i] = dt.Truncate(r.Int63() - r.Int63())
	}
	return a, b
}

var kernelTestTypes = []isa.DataType{
	isa.Int8, isa.Int16, isa.Int32, isa.Int64,
	isa.UInt8, isa.UInt16, isa.UInt32, isa.UInt64,
}

// TestKernelsBinaryMatchReference sweeps every element-wise binary kernel
// (and its scalar-broadcast twin) against evalBinary.
func TestKernelsBinaryMatchReference(t *testing.T) {
	ops := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpXnor, isa.OpMin, isa.OpMax, isa.OpLt, isa.OpGt, isa.OpEq,
	}
	for _, dt := range kernelTestTypes {
		a, b := edgeVectors(dt, 7)
		n := int64(len(a))
		got := make([]int64, n)
		for _, op := range ops {
			k := kernels.Binary(op, dt)
			if k == nil {
				t.Fatalf("no kernel for %v.%v", op, dt)
			}
			k(got, a, b, 0, n)
			for i := int64(0); i < n; i++ {
				want := dt.Truncate(evalBinary(op, dt, a[i], b[i]))
				if got[i] != want {
					t.Fatalf("%v.%v kernel(a=%d, b=%d) = %d, reference %d",
						op, dt, a[i], b[i], got[i], want)
				}
			}
			sk := kernels.Scalar(op, dt)
			for _, s := range []int64{0, 1, -1, 3, math.MinInt64, math.MaxInt64, 255} {
				s := dt.Truncate(s)
				sk(got, a, s, 0, n)
				for i := int64(0); i < n; i++ {
					want := dt.Truncate(evalBinary(op, dt, a[i], s))
					if got[i] != want {
						t.Fatalf("%v.%v scalar kernel(a=%d, s=%d) = %d, reference %d",
							op, dt, a[i], s, got[i], want)
					}
				}
			}
		}
	}
}

// TestKernelsUnaryMatchReference sweeps not/abs/popcount (and sbox at 8-bit
// widths) against evalUnary.
func TestKernelsUnaryMatchReference(t *testing.T) {
	for _, dt := range kernelTestTypes {
		a, _ := edgeVectors(dt, 11)
		n := int64(len(a))
		got := make([]int64, n)
		ops := []isa.Op{isa.OpNot, isa.OpAbs, isa.OpPopCount}
		if dt.Bits() == 8 {
			ops = append(ops, isa.OpSbox, isa.OpSboxInv)
		}
		for _, op := range ops {
			k := kernels.Unary(op, dt)
			if k == nil {
				t.Fatalf("no kernel for %v.%v", op, dt)
			}
			k(got, a, 0, n)
			for i := int64(0); i < n; i++ {
				want := evalUnary(op, dt, a[i])
				if got[i] != want {
					t.Fatalf("%v.%v kernel(%d) = %d, reference %d", op, dt, a[i], got[i], want)
				}
			}
		}
	}
}

// TestKernelsShiftMatchReference sweeps both shifts at amounts below, at,
// and past the element width against evalShift.
func TestKernelsShiftMatchReference(t *testing.T) {
	for _, dt := range kernelTestTypes {
		a, _ := edgeVectors(dt, 13)
		n := int64(len(a))
		got := make([]int64, n)
		amounts := []int{0, 1, dt.Bits() / 2, dt.Bits() - 1, dt.Bits(), dt.Bits() + 1, 127}
		for _, op := range []isa.Op{isa.OpShiftL, isa.OpShiftR} {
			k := kernels.Shift(op, dt)
			if k == nil {
				t.Fatalf("no kernel for %v.%v", op, dt)
			}
			for _, amount := range amounts {
				k(got, a, amount, 0, n)
				for i := int64(0); i < n; i++ {
					want := evalShift(op, dt, a[i], amount)
					if got[i] != want {
						t.Fatalf("%v.%v kernel(%d, amount=%d) = %d, reference %d",
							op, dt, a[i], amount, got[i], want)
					}
				}
			}
		}
	}
}

// TestKernelsSumMatchReference checks the reduction kernels against direct
// serial accumulation of the canonical carriers.
func TestKernelsSumMatchReference(t *testing.T) {
	for _, dt := range kernelTestTypes {
		a, _ := edgeVectors(dt, 17)
		var want int64
		for _, v := range a {
			want += v
		}
		if got := kernels.Sum(a, 0, int64(len(a))); got != want {
			t.Errorf("%v: Sum = %d, reference %d", dt, got, want)
		}
	}
}

// TestReferenceEvalBitIdentical runs a full mixed command script through the
// public API twice — specialized kernels vs ReferenceEval — and requires
// identical output data and reduction results.
func TestReferenceEvalBitIdentical(t *testing.T) {
	run := func(ref bool) ([][]int64, int64) {
		d, err := New(Config{
			Target: TargetFulcrum, Module: dram.DDR4(1),
			Functional: true, ReferenceEval: ref,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, b := edgeVectors(isa.Int32, 23)
		n := int64(len(a))
		alloc := func(vals []int64) ObjID {
			id, err := d.Alloc(n, isa.Int32)
			if err != nil {
				t.Fatal(err)
			}
			if vals != nil {
				if err := d.CopyHostToDevice(id, vals[:n]); err != nil {
					t.Fatal(err)
				}
			}
			return id
		}
		ao, bo, dst := alloc(a), alloc(b), alloc(nil)
		var outs [][]int64
		for _, op := range []isa.Op{isa.OpAdd, isa.OpMul, isa.OpDiv, isa.OpLt} {
			if err := d.ExecBinary(op, ao, bo, dst); err != nil {
				t.Fatal(err)
			}
			out, err := d.CopyDeviceToHost(dst)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, out)
		}
		if err := d.ExecShift(isa.OpShiftR, ao, 3, dst); err != nil {
			t.Fatal(err)
		}
		out, err := d.CopyDeviceToHost(dst)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
		sum, err := d.RedSum(ao)
		if err != nil {
			t.Fatal(err)
		}
		return outs, sum
	}
	kOuts, kSum := run(false)
	rOuts, rSum := run(true)
	if kSum != rSum {
		t.Errorf("RedSum: kernels %d vs reference %d", kSum, rSum)
	}
	for i := range kOuts {
		for j := range kOuts[i] {
			if kOuts[i][j] != rOuts[i][j] {
				t.Fatalf("output %d element %d: kernels %d vs reference %d",
					i, j, kOuts[i][j], rOuts[i][j])
			}
		}
	}
}

// FuzzKernelBinary cross-checks the specialized binary kernels against
// evalBinary for arbitrary operand pairs over every op and element type —
// the kernel-path twin of FuzzEvalBinary.
func FuzzKernelBinary(f *testing.F) {
	seedPairs(f)
	ops := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpXnor, isa.OpMin, isa.OpMax, isa.OpLt, isa.OpGt, isa.OpEq,
	}
	f.Fuzz(func(t *testing.T, a, b int64) {
		var got [1]int64
		for _, dt := range fuzzTypes {
			ta, tb := dt.Truncate(a), dt.Truncate(b)
			for _, op := range ops {
				kernels.Binary(op, dt)(got[:], []int64{ta}, []int64{tb}, 0, 1)
				want := dt.Truncate(evalBinary(op, dt, ta, tb))
				if got[0] != want {
					t.Errorf("%v.%v kernel(a=%d, b=%d) = %d, reference %d",
						op, dt, ta, tb, got[0], want)
				}
				kernels.Scalar(op, dt)(got[:], []int64{ta}, tb, 0, 1)
				if got[0] != want {
					t.Errorf("%v.%v scalar kernel(a=%d, s=%d) = %d, reference %d",
						op, dt, ta, tb, got[0], want)
				}
			}
		}
	})
}
