package device

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"pimeval/internal/cmdstream"
	"pimeval/internal/fault"
	"pimeval/internal/isa"
	"pimeval/internal/stats"
)

// Device snapshot wire format (DESIGN.md §16). A snapshot serializes the
// complete semantic state of a device mid-replay — object table, memory
// contents at true element width, statistics, trace, and the fault
// injector's write-sequence state — such that RestoreSnapshot yields a
// device whose every subsequent operation is bit-identical to the
// uninterrupted original's.
//
// Layout: the magic "PIMS" and a version byte, then a sequence of CRC-framed
// sections, each
//
//	tag(1) | uvarint(payload length) | payload | crc32-IEEE(4, LE)
//
// with the CRC computed over tag, length, and payload. Sections appear in a
// fixed order — meta, one frame per live object (ascending ID), freed IDs,
// statistics, trace, fault state (only on fault-injecting devices), end —
// and nothing may follow the end frame. Framing every section independently
// means any truncation or corruption surfaces as a clean sentinel error at
// the damaged frame, never as a panic or a silently different restore.
const (
	snapMagic   = "PIMS"
	snapVersion = 1

	snapTagEnd    = 0
	snapTagMeta   = 1
	snapTagObject = 2
	snapTagFreed  = 3
	snapTagStats  = 4
	snapTagTrace  = 5
	snapTagFault  = 6

	// maxSnapSection bounds any fully-buffered section payload; object data
	// is streamed and bounded by the device's own capacity checks instead.
	maxSnapSection = 1 << 26
	// maxSnapString bounds embedded strings (type names, trace mnemonics).
	maxSnapString = 1 << 12
	// maxSnapElems bounds a single object's element count before the
	// resource manager's capacity checks run, keeping hostile headers from
	// overflowing size arithmetic.
	maxSnapElems = 1 << 48
	// snapPackElems is the element count packed per chunk when writing
	// object data, bounding writer-side buffering.
	snapPackElems = 1 << 16
)

// Sentinel snapshot errors. Every error returned by RestoreSnapshot wraps
// exactly one of these (match with errors.Is), with the failing frame's
// detail in the message.
var (
	// ErrSnapshotFormat marks input that is not a device snapshot at all:
	// bad magic or an unsupported version.
	ErrSnapshotFormat = errors.New("device: unrecognized snapshot format")
	// ErrSnapshotTruncated marks a snapshot cut off mid-frame.
	ErrSnapshotTruncated = errors.New("device: truncated snapshot")
	// ErrSnapshotCorrupt marks a snapshot that is structurally damaged: a
	// CRC mismatch, an out-of-order or malformed frame, or field values
	// that cannot describe a valid device.
	ErrSnapshotCorrupt = errors.New("device: corrupt snapshot")
)

// snapReadErr maps a read failure in context: EOF variants mean the
// snapshot was cut off (ErrSnapshotTruncated); anything else is a real I/O
// error and propagates unchanged so the caller can still match it.
func snapReadErr(err error, what string) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: %s", ErrSnapshotTruncated, what)
	}
	return fmt.Errorf("device: snapshot %s: %w", what, err)
}

// snapMeta is the JSON payload of the meta frame: the stream header that
// rebuilds the device (architecture, geometry, functional mode, fault
// configuration), the replay cursor the snapshot was taken at, and the
// resource manager's next sequential object ID.
type snapMeta struct {
	Stream cmdstream.Header `json:"stream"`
	Cursor int64            `json:"cursor"`
	NextID int64            `json:"next_id"`
}

// snapTrace mirrors the trace sink for the trace frame.

// WriteSnapshot serializes the device's full state to w, recording cursor —
// the number of stream records consumed so far — so a resumed replay knows
// where to pick up. The encoding is deterministic: the same device state
// always produces the same bytes, and Snapshot→Restore→Snapshot is
// byte-stable.
//
// Snapshots capture semantic state only (objects, statistics, trace, fault
// sequence); observational configuration such as Workers or ReferenceEval is
// chosen anew at restore. A snapshot may not be taken inside a WithRepeat
// scope or while stream recording or extra sinks are attached — the captured
// state would not be self-contained.
func (d *Device) WriteSnapshot(w io.Writer, cursor int64) error {
	if cursor < 0 {
		return fmt.Errorf("%w: snapshot cursor %d", ErrBadArgument, cursor)
	}
	if d.pipe.repeat != 1 {
		return fmt.Errorf("%w: snapshot inside WithRepeat scope", ErrBadArgument)
	}
	if d.pipe.recorder != nil {
		return fmt.Errorf("%w: snapshot while stream recording is attached", ErrBadArgument)
	}
	if len(d.pipe.extra) > 0 {
		return fmt.Errorf("%w: snapshot with extra sinks attached", ErrBadArgument)
	}
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	if _, err := w.Write([]byte{snapVersion}); err != nil {
		return err
	}
	sw := &snapWriter{w: w}

	meta, err := json.Marshal(snapMeta{
		Stream: d.streamHeader(),
		Cursor: cursor,
		NextID: int64(d.res.nextID),
	})
	if err != nil {
		return err
	}
	if err := sw.blob(snapTagMeta, meta); err != nil {
		return err
	}

	ids := make([]ObjID, 0, len(d.res.objs))
	for id := range d.res.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := sw.object(d.res.objs[id]); err != nil {
			return err
		}
	}

	if err := sw.blob(snapTagFreed, encodeFreed(d.res.freed)); err != nil {
		return err
	}

	st, err := json.Marshal(d.pipe.stats.st.State())
	if err != nil {
		return err
	}
	if err := sw.blob(snapTagStats, st); err != nil {
		return err
	}

	if err := sw.blob(snapTagTrace, encodeTrace(&d.pipe.trace)); err != nil {
		return err
	}

	if d.inj != nil {
		fs, err := json.Marshal(d.inj.State())
		if err != nil {
			return err
		}
		if err := sw.blob(snapTagFault, fs); err != nil {
			return err
		}
	}

	return sw.blob(snapTagEnd, nil)
}

// RestoreSnapshot rebuilds a device from a snapshot written by
// WriteSnapshot, returning the device and the replay cursor recorded in it.
// workers sizes the new device's functional worker pool (observational, as
// with NewFromHeader). Damaged input fails with an error wrapping
// ErrSnapshotFormat, ErrSnapshotTruncated, or ErrSnapshotCorrupt; a restore
// never panics and never silently yields a device different from the
// snapshotted one.
func RestoreSnapshot(r io.Reader, workers int) (*Device, int64, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, snapReadErr(err, "magic")
	}
	if string(magic) != snapMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrSnapshotFormat, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, 0, snapReadErr(err, "version")
	}
	if ver != snapVersion {
		return nil, 0, fmt.Errorf("%w: unsupported snapshot version %d", ErrSnapshotFormat, ver)
	}
	sr := &snapReader{br: br}

	// Meta frame first: it carries everything needed to build the device.
	tag, err := sr.frameStart()
	if err != nil {
		return nil, 0, err
	}
	if tag != snapTagMeta {
		return nil, 0, fmt.Errorf("%w: expected meta frame, found tag %d", ErrSnapshotCorrupt, tag)
	}
	metaBuf, err := sr.blob()
	if err != nil {
		return nil, 0, err
	}
	if err := sr.frameEnd(); err != nil {
		return nil, 0, err
	}
	var meta snapMeta
	if err := json.Unmarshal(metaBuf, &meta); err != nil {
		return nil, 0, fmt.Errorf("%w: meta frame: %v", ErrSnapshotCorrupt, err)
	}
	if meta.Cursor < 0 || meta.NextID < 1 {
		return nil, 0, fmt.Errorf("%w: meta cursor %d, next id %d", ErrSnapshotCorrupt, meta.Cursor, meta.NextID)
	}
	d, err := NewFromHeader(meta.Stream, workers)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: meta header: %v", ErrSnapshotCorrupt, err)
	}

	// Object frames, ascending ID order (allocAt enforces uniqueness and the
	// device's own capacity limits, bounding hostile allocations).
	tag, err = sr.frameStart()
	if err != nil {
		return nil, 0, err
	}
	for tag == snapTagObject {
		if err := sr.restoreObject(d); err != nil {
			return nil, 0, err
		}
		if err := sr.frameEnd(); err != nil {
			return nil, 0, err
		}
		if tag, err = sr.frameStart(); err != nil {
			return nil, 0, err
		}
	}

	// Freed-ID frame.
	if tag != snapTagFreed {
		return nil, 0, fmt.Errorf("%w: expected freed frame, found tag %d", ErrSnapshotCorrupt, tag)
	}
	freedBuf, err := sr.blob()
	if err != nil {
		return nil, 0, err
	}
	if err := sr.frameEnd(); err != nil {
		return nil, 0, err
	}
	maxFreed, err := decodeFreed(freedBuf, d.res.objs, d.res.freed)
	if err != nil {
		return nil, 0, err
	}

	// Statistics frame.
	if tag, err = sr.frameStart(); err != nil {
		return nil, 0, err
	}
	if tag != snapTagStats {
		return nil, 0, fmt.Errorf("%w: expected stats frame, found tag %d", ErrSnapshotCorrupt, tag)
	}
	statsBuf, err := sr.blob()
	if err != nil {
		return nil, 0, err
	}
	if err := sr.frameEnd(); err != nil {
		return nil, 0, err
	}
	var stState stats.State
	if err := json.Unmarshal(statsBuf, &stState); err != nil {
		return nil, 0, fmt.Errorf("%w: stats frame: %v", ErrSnapshotCorrupt, err)
	}
	st, err := stats.FromState(stState)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: stats frame: %v", ErrSnapshotCorrupt, err)
	}
	d.pipe.stats.st = st

	// Trace frame.
	if tag, err = sr.frameStart(); err != nil {
		return nil, 0, err
	}
	if tag != snapTagTrace {
		return nil, 0, fmt.Errorf("%w: expected trace frame, found tag %d", ErrSnapshotCorrupt, tag)
	}
	if err := sr.restoreTrace(&d.pipe.trace); err != nil {
		return nil, 0, err
	}
	if err := sr.frameEnd(); err != nil {
		return nil, 0, err
	}

	// Fault frame: present exactly when the header enables fault injection.
	if tag, err = sr.frameStart(); err != nil {
		return nil, 0, err
	}
	if d.inj != nil {
		if tag != snapTagFault {
			return nil, 0, fmt.Errorf("%w: expected fault frame, found tag %d", ErrSnapshotCorrupt, tag)
		}
		faultBuf, err := sr.blob()
		if err != nil {
			return nil, 0, err
		}
		if err := sr.frameEnd(); err != nil {
			return nil, 0, err
		}
		var fs fault.State
		if err := json.Unmarshal(faultBuf, &fs); err != nil {
			return nil, 0, fmt.Errorf("%w: fault frame: %v", ErrSnapshotCorrupt, err)
		}
		if err := d.inj.SetState(fs); err != nil {
			return nil, 0, fmt.Errorf("%w: fault frame: %v", ErrSnapshotCorrupt, err)
		}
		if tag, err = sr.frameStart(); err != nil {
			return nil, 0, err
		}
	}

	// End frame, then EOF.
	if tag != snapTagEnd {
		return nil, 0, fmt.Errorf("%w: expected end frame, found tag %d", ErrSnapshotCorrupt, tag)
	}
	if sr.rem != 0 {
		return nil, 0, fmt.Errorf("%w: end frame with payload", ErrSnapshotCorrupt)
	}
	if err := sr.frameEnd(); err != nil {
		return nil, 0, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, 0, fmt.Errorf("%w: trailing data after end frame", ErrSnapshotCorrupt)
	}

	// The sequential ID counter must sit past every live and freed ID so the
	// resumed replay's allocations land exactly where the original's would.
	if meta.NextID < int64(d.res.nextID) || meta.NextID <= int64(maxFreed) {
		return nil, 0, fmt.Errorf("%w: next id %d behind object table", ErrSnapshotCorrupt, meta.NextID)
	}
	d.res.nextID = ObjID(meta.NextID)
	return d, meta.Cursor, nil
}

// encodeFreed renders the freed-ID set as a sorted delta-encoded list.
func encodeFreed(freed map[ObjID]bool) []byte {
	ids := make([]ObjID, 0, len(freed))
	for id := range freed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := binary.AppendUvarint(nil, uint64(len(ids)))
	prev := ObjID(0)
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id-prev))
		prev = id
	}
	return buf
}

// decodeFreed parses a freed-ID frame payload into freed, rejecting IDs
// that collide with live objects. It returns the largest freed ID.
func decodeFreed(buf []byte, objs map[ObjID]*Object, freed map[ObjID]bool) (ObjID, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: freed frame header", ErrSnapshotCorrupt)
	}
	buf = buf[n:]
	var id ObjID
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(buf)
		if n <= 0 || delta == 0 || delta > math.MaxInt64-uint64(id) {
			return 0, fmt.Errorf("%w: freed frame entry %d", ErrSnapshotCorrupt, i)
		}
		buf = buf[n:]
		id += ObjID(delta)
		if _, live := objs[id]; live {
			return 0, fmt.Errorf("%w: freed id %d is live", ErrSnapshotCorrupt, int64(id))
		}
		freed[id] = true
	}
	if len(buf) != 0 {
		return 0, fmt.Errorf("%w: freed frame trailing bytes", ErrSnapshotCorrupt)
	}
	return id, nil
}

// encodeTrace renders the trace sink state.
func encodeTrace(t *traceSink) []byte {
	var buf []byte
	if t.tracing {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(t.seq))
	buf = binary.AppendUvarint(buf, uint64(len(t.entries)))
	for _, e := range t.entries {
		buf = binary.AppendVarint(buf, e.Seq)
		buf = binary.AppendUvarint(buf, uint64(len(e.Name)))
		buf = append(buf, e.Name...)
		buf = binary.AppendVarint(buf, e.N)
		buf = binary.AppendVarint(buf, e.Reps)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Cost.TimeNS))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Cost.EnergyPJ))
	}
	return buf
}

// restoreTrace parses a trace frame into the device's trace sink.
func (sr *snapReader) restoreTrace(t *traceSink) error {
	flag, err := sr.byte()
	if err != nil {
		return err
	}
	if flag > 1 {
		return fmt.Errorf("%w: trace flag %d", ErrSnapshotCorrupt, flag)
	}
	seq, err := sr.uvarint()
	if err != nil {
		return err
	}
	count, err := sr.uvarint()
	if err != nil {
		return err
	}
	if seq > math.MaxInt64 || count > traceLimit || count > seq {
		return fmt.Errorf("%w: trace seq %d with %d entries", ErrSnapshotCorrupt, seq, count)
	}
	entries := make([]TraceEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		var e TraceEntry
		if e.Seq, err = sr.svarint(); err != nil {
			return err
		}
		if e.Name, err = sr.string(); err != nil {
			return err
		}
		if e.N, err = sr.svarint(); err != nil {
			return err
		}
		if e.Reps, err = sr.svarint(); err != nil {
			return err
		}
		if e.Cost.TimeNS, err = sr.f64(); err != nil {
			return err
		}
		if e.Cost.EnergyPJ, err = sr.f64(); err != nil {
			return err
		}
		entries = append(entries, e)
	}
	t.tracing = flag == 1
	t.seq = int64(seq)
	t.entries = entries
	return nil
}

// snapWriter emits CRC-framed sections.
type snapWriter struct {
	w    io.Writer
	crc  uint32
	pack []byte
}

func (sw *snapWriter) write(p []byte) error {
	sw.crc = crc32.Update(sw.crc, crc32.IEEETable, p)
	_, err := sw.w.Write(p)
	return err
}

func (sw *snapWriter) frameStart(tag byte, payloadLen uint64) error {
	sw.crc = 0
	var buf [binary.MaxVarintLen64 + 1]byte
	buf[0] = tag
	n := binary.PutUvarint(buf[1:], payloadLen)
	return sw.write(buf[:1+n])
}

func (sw *snapWriter) frameEnd() error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], sw.crc)
	_, err := sw.w.Write(buf[:])
	return err
}

// blob writes one fully-materialized frame.
func (sw *snapWriter) blob(tag byte, payload []byte) error {
	if err := sw.frameStart(tag, uint64(len(payload))); err != nil {
		return err
	}
	if err := sw.write(payload); err != nil {
		return err
	}
	return sw.frameEnd()
}

// object writes one object frame: the header fields, then the element data
// packed at the type's true width, little-endian, in bounded chunks.
func (sw *snapWriter) object(o *Object) error {
	name := o.dt.String()
	hdr := binary.AppendUvarint(nil, uint64(o.id))
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.AppendUvarint(hdr, uint64(o.n))
	hasData := byte(0)
	width := o.dt.Bytes()
	var dataLen uint64
	if o.data != nil {
		hasData = 1
		dataLen = uint64(o.n) * uint64(width)
	}
	hdr = append(hdr, hasData)
	if err := sw.frameStart(snapTagObject, uint64(len(hdr))+dataLen); err != nil {
		return err
	}
	if err := sw.write(hdr); err != nil {
		return err
	}
	if o.data != nil {
		if cap(sw.pack) < snapPackElems*width {
			sw.pack = make([]byte, snapPackElems*width)
		}
		for lo := int64(0); lo < o.n; lo += snapPackElems {
			hi := lo + snapPackElems
			if hi > o.n {
				hi = o.n
			}
			buf := sw.pack[:int(hi-lo)*width]
			packElems(buf, o.data[lo:hi], width)
			if err := sw.write(buf); err != nil {
				return err
			}
		}
	}
	return sw.frameEnd()
}

// packElems packs values at the given byte width, little-endian. Values are
// canonical (truncated) so the low width bytes are lossless.
func packElems(dst []byte, src []int64, width int) {
	switch width {
	case 1:
		for i, v := range src {
			dst[i] = byte(v)
		}
	case 2:
		for i, v := range src {
			binary.LittleEndian.PutUint16(dst[i*2:], uint16(v))
		}
	case 4:
		for i, v := range src {
			binary.LittleEndian.PutUint32(dst[i*4:], uint32(v))
		}
	default:
		for i, v := range src {
			binary.LittleEndian.PutUint64(dst[i*8:], uint64(v))
		}
	}
}

// unpackElems reverses packElems, re-truncating each element to canonical
// form through the data type.
func unpackElems(dst []int64, src []byte, dt isa.DataType, width int) {
	switch width {
	case 1:
		for i := range dst {
			dst[i] = dt.Truncate(int64(src[i]))
		}
	case 2:
		for i := range dst {
			dst[i] = dt.Truncate(int64(binary.LittleEndian.Uint16(src[i*2:])))
		}
	case 4:
		for i := range dst {
			dst[i] = dt.Truncate(int64(binary.LittleEndian.Uint32(src[i*4:])))
		}
	default:
		for i := range dst {
			dst[i] = dt.Truncate(int64(binary.LittleEndian.Uint64(src[i*8:])))
		}
	}
}

// snapReader parses CRC-framed sections, tracking the running CRC and the
// current frame's remaining payload bytes so a malformed frame can never
// read past its own declared extent.
type snapReader struct {
	br  *bufio.Reader
	crc uint32
	rem uint64
	one [1]byte
}

// rawByte reads one CRC-covered byte outside payload accounting (frame
// headers).
func (sr *snapReader) rawByte() (byte, error) {
	b, err := sr.br.ReadByte()
	if err != nil {
		return 0, snapReadErr(err, "frame header")
	}
	sr.one[0] = b
	sr.crc = crc32.Update(sr.crc, crc32.IEEETable, sr.one[:])
	return b, nil
}

// frameStart reads the next frame's tag and payload length.
func (sr *snapReader) frameStart() (byte, error) {
	sr.crc = 0
	tag, err := sr.rawByte()
	if err != nil {
		return 0, err
	}
	var length uint64
	for shift := uint(0); ; shift += 7 {
		if shift >= 64 {
			return 0, fmt.Errorf("%w: frame length overflow", ErrSnapshotCorrupt)
		}
		b, err := sr.rawByte()
		if err != nil {
			return 0, err
		}
		length |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
	}
	sr.rem = length
	return tag, nil
}

// frameEnd verifies the frame was fully consumed and its CRC matches.
func (sr *snapReader) frameEnd() error {
	if sr.rem != 0 {
		return fmt.Errorf("%w: %d unconsumed payload bytes", ErrSnapshotCorrupt, sr.rem)
	}
	var buf [4]byte
	if _, err := io.ReadFull(sr.br, buf[:]); err != nil {
		return snapReadErr(err, "frame checksum")
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != sr.crc {
		return fmt.Errorf("%w: frame checksum mismatch", ErrSnapshotCorrupt)
	}
	return nil
}

// read fills p from the current frame's payload.
func (sr *snapReader) read(p []byte) error {
	if uint64(len(p)) > sr.rem {
		return fmt.Errorf("%w: frame shorter than its contents", ErrSnapshotCorrupt)
	}
	if _, err := io.ReadFull(sr.br, p); err != nil {
		return snapReadErr(err, "frame payload")
	}
	sr.crc = crc32.Update(sr.crc, crc32.IEEETable, p)
	sr.rem -= uint64(len(p))
	return nil
}

func (sr *snapReader) byte() (byte, error) {
	if err := sr.read(sr.one[:]); err != nil {
		return 0, err
	}
	return sr.one[0], nil
}

func (sr *snapReader) uvarint() (uint64, error) {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		if shift >= 64 {
			return 0, fmt.Errorf("%w: varint overflow", ErrSnapshotCorrupt)
		}
		b, err := sr.byte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
}

func (sr *snapReader) svarint() (int64, error) {
	u, err := sr.uvarint()
	if err != nil {
		return 0, err
	}
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, nil
}

func (sr *snapReader) f64() (float64, error) {
	var buf [8]byte
	if err := sr.read(buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func (sr *snapReader) string() (string, error) {
	n, err := sr.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxSnapString {
		return "", fmt.Errorf("%w: string of %d bytes", ErrSnapshotCorrupt, n)
	}
	buf := make([]byte, n)
	if err := sr.read(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// blob reads the current frame's whole remaining payload.
func (sr *snapReader) blob() ([]byte, error) {
	if sr.rem > maxSnapSection {
		return nil, fmt.Errorf("%w: section of %d bytes", ErrSnapshotCorrupt, sr.rem)
	}
	buf := make([]byte, sr.rem)
	if err := sr.read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// restoreObject parses one object frame into d. Allocation goes through the
// resource manager's explicit-ID path, so duplicate IDs, freed IDs, and
// over-capacity objects are rejected by the same checks replay uses.
func (sr *snapReader) restoreObject(d *Device) error {
	id, err := sr.uvarint()
	if err != nil {
		return err
	}
	name, err := sr.string()
	if err != nil {
		return err
	}
	dt, ok := isa.TypeByName(name)
	if !ok {
		return fmt.Errorf("%w: object %d: unknown data type %q", ErrSnapshotCorrupt, id, name)
	}
	n, err := sr.uvarint()
	if err != nil {
		return err
	}
	if id > math.MaxInt64 || n > maxSnapElems {
		return fmt.Errorf("%w: object id %d with %d elements", ErrSnapshotCorrupt, id, n)
	}
	hasData, err := sr.byte()
	if err != nil {
		return err
	}
	if hasData > 1 || (hasData == 1) != d.cfg.Functional {
		return fmt.Errorf("%w: object %d data flag %d on functional=%v device",
			ErrSnapshotCorrupt, id, hasData, d.cfg.Functional)
	}
	obj, err := d.res.allocAt(ObjID(id), int64(n), dt)
	if err != nil {
		return fmt.Errorf("%w: object %d: %v", ErrSnapshotCorrupt, id, err)
	}
	width := dt.Bytes()
	if hasData == 0 {
		if sr.rem != 0 {
			return fmt.Errorf("%w: object %d: %d stray payload bytes", ErrSnapshotCorrupt, id, sr.rem)
		}
		return nil
	}
	if want := uint64(n) * uint64(width); sr.rem != want {
		return fmt.Errorf("%w: object %d: %d data bytes, want %d", ErrSnapshotCorrupt, id, sr.rem, want)
	}
	buf := make([]byte, snapPackElems*width)
	for lo := int64(0); lo < obj.n; lo += snapPackElems {
		hi := lo + snapPackElems
		if hi > obj.n {
			hi = obj.n
		}
		chunk := buf[:int(hi-lo)*width]
		if err := sr.read(chunk); err != nil {
			return err
		}
		unpackElems(obj.data[lo:hi], chunk, dt, width)
	}
	return nil
}
