package device

import (
	"context"
	"errors"
	"testing"
	"time"

	"pimeval/internal/dram"
	"pimeval/internal/fault"
	"pimeval/internal/isa"
	"pimeval/internal/perf"
)

// Tests for the hardened execution path: the sentinel error taxonomy
// (use-after-free, cancellation, panic recovery) and the device-level ECC
// accounting behavior.

// TestUseAfterFreeReturnsErrFreed pins that every operation touching a freed
// object fails with ErrFreed — distinct from ErrBadObject — so callers can
// tell a lifetime bug from a corrupted handle.
func TestUseAfterFreeReturnsErrFreed(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	a, err := d.Alloc(64, isa.Int32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Alloc(64, isa.Int32)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CopyHostToDevice(a, make([]int64, 64)); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(a); err != nil {
		t.Fatal(err)
	}
	checks := map[string]error{
		"double free":  d.Free(a),
		"exec dst":     d.ExecBinary(isa.OpAdd, b, b, a),
		"exec src":     d.ExecBinary(isa.OpAdd, a, b, b),
		"exec unary":   d.ExecUnary(isa.OpNot, a, b),
		"h2d copy":     d.CopyHostToDevice(a, make([]int64, 64)),
		"d2d copy src": d.CopyDeviceToDevice(a, b),
		"d2d copy dst": d.CopyDeviceToDevice(b, a),
		"broadcast":    d.Broadcast(a, 1),
	}
	if _, err := d.CopyDeviceToHost(a); err == nil {
		t.Error("d2h copy of freed object succeeded")
	} else {
		checks["d2h copy"] = err
	}
	if _, err := d.RedSum(a); err == nil {
		t.Error("RedSum of freed object succeeded")
	} else {
		checks["redsum"] = err
	}
	for name, err := range checks {
		if !errors.Is(err, ErrFreed) {
			t.Errorf("%s: got %v, want ErrFreed", name, err)
		}
		if errors.Is(err, ErrBadObject) {
			t.Errorf("%s: ErrFreed must not alias ErrBadObject", name)
		}
	}
	// A never-allocated ID is a different bug and keeps ErrBadObject.
	if err := d.Free(ObjID(9999)); !errors.Is(err, ErrBadObject) {
		t.Errorf("free of unknown ID: got %v, want ErrBadObject", err)
	}
}

// TestCancellationStopsDispatch pins the cancellation contract: after the
// installed context is canceled, every operation fails with an error that
// errors.Is-matches both ErrCanceled and the context's own error.
func TestCancellationStopsDispatch(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	a, err := d.Alloc(64, isa.Int32)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d.SetContext(ctx)
	if err := d.CopyHostToDevice(a, make([]int64, 64)); err != nil {
		t.Fatalf("pre-cancel operation failed: %v", err)
	}
	cancel()
	ops := map[string]func() error{
		"exec": func() error { return d.ExecBinary(isa.OpAdd, a, a, a) },
		"h2d":  func() error { return d.CopyHostToDevice(a, make([]int64, 64)) },
		"d2h":  func() error { _, err := d.CopyDeviceToHost(a); return err },
		"alloc": func() error {
			_, err := d.Alloc(8, isa.Int32)
			return err
		},
		"free": func() error { return d.Free(a) },
	}
	for name, op := range ops {
		err := op()
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s after cancel: got %v, want ErrCanceled", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s after cancel: does not wrap context.Canceled: %v", name, err)
		}
	}
	// Removing the hook restores normal operation.
	d.SetContext(nil)
	if err := d.ExecBinary(isa.OpAdd, a, a, a); err != nil {
		t.Errorf("operation after SetContext(nil): %v", err)
	}
}

// TestDeadlineExceededMatchesErrCanceled pins that a deadline expiry is also
// reported through ErrCanceled, wrapping context.DeadlineExceeded.
func TestDeadlineExceededMatchesErrCanceled(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	d.SetContext(ctx)
	_, err := d.Alloc(8, isa.Int32)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("got %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// panicSink is a pluggable sink that panics on its first event, modeling a
// poisoned extension at the dispatch boundary.
type panicSink struct{ armed bool }

func (p *panicSink) Emit(ev *Event) {
	if p.armed {
		p.armed = false
		panic("sink poisoned")
	}
}

// TestPanicRecoveredAtDispatchBoundary pins the panic boundary: on the
// hardened path (here enabled by installing a context; fault injection
// enables it too) a panic in the pipeline surfaces as an error wrapping
// ErrPanic, and the device keeps serving subsequent operations.
func TestPanicRecoveredAtDispatchBoundary(t *testing.T) {
	d := newDev(t, TargetFulcrum)
	d.SetContext(context.Background())
	a, err := d.Alloc(64, isa.Int32)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CopyHostToDevice(a, make([]int64, 64)); err != nil {
		t.Fatal(err)
	}
	sink := &panicSink{armed: true}
	d.AddSink(sink)
	err = d.ExecBinary(isa.OpAdd, a, a, a)
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("got %v, want ErrPanic", err)
	}
	// The device survives: the next operation succeeds.
	if err := d.ExecBinary(isa.OpAdd, a, a, a); err != nil {
		t.Errorf("operation after recovered panic: %v", err)
	}
}

// TestECCUncorrectableSurfacesError pins that a failed core under ECC
// produces ErrUncorrectable at the API boundary and counts the detected
// words, while the write itself still lands (detected-but-uncorrected data
// stays resident, as on real hardware).
func TestECCUncorrectableSurfacesError(t *testing.T) {
	d, err := New(Config{
		Target: TargetFulcrum, Module: dram.DDR4(1), Functional: true, Workers: 1,
		Faults: &fault.Config{Seed: 3, FailedCores: 1, ECC: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One object per core region: DDR4 x1 fulcrum has thousands of cores,
	// so allocate enough elements to hit every core including the failed one.
	n := int64(d.Cores() * 2)
	a, err := d.Alloc(n, isa.Int32)
	if err != nil {
		t.Fatal(err)
	}
	err = d.CopyHostToDevice(a, make([]int64, n))
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("write spanning a failed core: got %v, want ErrUncorrectable", err)
	}
	if c := d.FaultCounts(); c.Detected == 0 || c.FailedWords == 0 {
		t.Errorf("counts = %+v, want Detected and FailedWords > 0", c)
	}
}

// TestECCOverheadCharged pins that enabling ECC charges the modeled
// maintenance overhead (1/8 of the protected cost) into the stats, and that
// it is tracked separately from the base cost.
func TestECCOverheadCharged(t *testing.T) {
	run := func(fc *fault.Config) (kernel perf.Cost, ecc perf.Cost) {
		d, err := New(Config{
			Target: TargetFulcrum, Module: dram.DDR4(1), Functional: true, Workers: 1,
			Faults: fc,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := d.Alloc(256, isa.Int32)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.CopyHostToDevice(a, make([]int64, 256)); err != nil {
			t.Fatal(err)
		}
		if err := d.ExecBinary(isa.OpAdd, a, a, a); err != nil {
			t.Fatal(err)
		}
		return d.Stats().Kernel(), d.Stats().ECCOverhead()
	}
	baseKernel, baseECC := run(nil)
	if baseECC != (perf.Cost{}) {
		t.Fatalf("fault-free run charged ECC overhead %+v", baseECC)
	}
	eccKernel, eccCost := run(&fault.Config{Seed: 1, ECC: true})
	if eccCost == (perf.Cost{}) {
		t.Fatal("ECC run charged no overhead")
	}
	if eccKernel.TimeNS <= baseKernel.TimeNS {
		t.Errorf("ECC kernel time %v not above base %v", eccKernel.TimeNS, baseKernel.TimeNS)
	}
}
