package device

import (
	"fmt"
	"math/bits"

	"pimeval/internal/cmdstream"
	"pimeval/internal/isa"
	"pimeval/internal/kernels"
)

// binaryOps is the set of element-wise two-input commands.
var binaryOps = map[isa.Op]bool{
	isa.OpAdd: true, isa.OpSub: true, isa.OpMul: true, isa.OpDiv: true,
	isa.OpAnd: true, isa.OpOr: true, isa.OpXor: true, isa.OpXnor: true,
	isa.OpMin: true, isa.OpMax: true,
	isa.OpLt: true, isa.OpGt: true, isa.OpEq: true,
}

// unaryOps is the set of element-wise one-input commands.
var unaryOps = map[isa.Op]bool{
	isa.OpNot: true, isa.OpAbs: true, isa.OpPopCount: true,
	isa.OpSbox: true, isa.OpSboxInv: true,
}

// aesSbox and aesSboxInv are the functional semantics of OpSbox/OpSboxInv.
// The tables are generated from GF(2^8) math in internal/kernels and shared
// with the specialized lookup kernels.
var aesSbox, aesSboxInv = kernels.AESSbox, kernels.AESSboxInv

// compareOps produce 0/1 masks; their destination may use a narrower type
// than the operands (a one-byte bitmap is the common case).
var compareOps = map[isa.Op]bool{isa.OpLt: true, isa.OpGt: true, isa.OpEq: true}

// ExecBinary dispatches an element-wise binary command dst = a op b.
func (d *Device) ExecBinary(op isa.Op, a, b, dst ObjID) (err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return err
	}
	if !binaryOps[op] {
		return fmt.Errorf("%w: %v is not an element-wise binary op", ErrBadArgument, op)
	}
	ao, bo, do, err := d.triple(a, b, dst, compareOps[op])
	if err != nil {
		return err
	}
	ev := d.begin(ClassExec)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{
			Kind: cmdstream.KindExec, Form: cmdstream.FormBinary,
			Op: op.String(), Type: ao.dt.String(), N: do.n,
			A: int64(a), B: int64(b), Dst: int64(dst),
		}
	}
	if d.cfg.Functional {
		// Resolve-once dispatch contract: the (op, type) pair picks one
		// specialized kernel per command, and the sharded engine runs that
		// tight loop over every span. The per-element reference evaluator
		// below is the golden semantics the kernels are differentially
		// tested against (ReferenceEval forces it).
		if k := kernels.Binary(op, ao.dt); k != nil && !d.cfg.ReferenceEval {
			err = d.forSpans(do, func(lo, hi int64) { k(do.data, ao.data, bo.data, lo, hi) })
		} else {
			err = d.forSpans(do, func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					do.data[i] = do.dt.Truncate(evalBinary(op, ao.dt, ao.data[i], bo.data[i]))
				}
			})
		}
		if err != nil {
			return err
		}
	}
	ferr := d.injectWrite(do, 0, do.n)
	d.finishExec(ev, isa.Command{Op: op, Type: ao.dt, N: do.n, Inputs: 2, WritesResult: true}, do)
	return ferr
}

// ExecScalar dispatches dst = a op scalar, with the scalar broadcast by the
// controller (one memory-resident input).
func (d *Device) ExecScalar(op isa.Op, a ObjID, scalar int64, dst ObjID) (err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return err
	}
	if !binaryOps[op] {
		return fmt.Errorf("%w: %v is not an element-wise binary op", ErrBadArgument, op)
	}
	ao, do, err := d.pairTyped(a, dst, compareOps[op])
	if err != nil {
		return err
	}
	s := ao.dt.Truncate(scalar)
	ev := d.begin(ClassExec)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{
			Kind: cmdstream.KindExec, Form: cmdstream.FormScalar,
			Op: op.String(), Type: ao.dt.String(), N: do.n,
			A: int64(a), Dst: int64(dst), Scalar: scalar,
		}
	}
	if d.cfg.Functional {
		if k := kernels.Scalar(op, ao.dt); k != nil && !d.cfg.ReferenceEval {
			err = d.forSpans(do, func(lo, hi int64) { k(do.data, ao.data, s, lo, hi) })
		} else {
			err = d.forSpans(do, func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					do.data[i] = do.dt.Truncate(evalBinary(op, ao.dt, ao.data[i], s))
				}
			})
		}
		if err != nil {
			return err
		}
	}
	ferr := d.injectWrite(do, 0, do.n)
	d.finishExec(ev, isa.Command{Op: op, Type: ao.dt, N: do.n, Scalar: s, Inputs: 1, WritesResult: true}, do)
	return ferr
}

// ExecUnary dispatches dst = op a (not, abs, popcount).
func (d *Device) ExecUnary(op isa.Op, a, dst ObjID) (err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return err
	}
	if !unaryOps[op] {
		return fmt.Errorf("%w: %v is not a unary op", ErrBadArgument, op)
	}
	ao, do, err := d.pair(a, dst)
	if err != nil {
		return err
	}
	if (op == isa.OpSbox || op == isa.OpSboxInv) && do.dt.Bits() != 8 {
		return fmt.Errorf("%w: %v requires an 8-bit element type, got %v", ErrBadArgument, op, do.dt)
	}
	ev := d.begin(ClassExec)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{
			Kind: cmdstream.KindExec, Form: cmdstream.FormUnary,
			Op: op.String(), Type: do.dt.String(), N: do.n,
			A: int64(a), Dst: int64(dst),
		}
	}
	if d.cfg.Functional {
		if k := kernels.Unary(op, do.dt); k != nil && !d.cfg.ReferenceEval {
			err = d.forSpans(do, func(lo, hi int64) { k(do.data, ao.data, lo, hi) })
		} else {
			err = d.forSpans(do, func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					do.data[i] = evalUnary(op, do.dt, ao.data[i])
				}
			})
		}
		if err != nil {
			return err
		}
	}
	ferr := d.injectWrite(do, 0, do.n)
	d.finishExec(ev, isa.Command{Op: op, Type: do.dt, N: do.n, Inputs: 1, WritesResult: true}, do)
	return ferr
}

// ExecShift dispatches dst = a << amount or a >> amount. Right shifts are
// arithmetic for signed types and logical for unsigned types.
func (d *Device) ExecShift(op isa.Op, a ObjID, amount int, dst ObjID) (err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return err
	}
	if op != isa.OpShiftL && op != isa.OpShiftR {
		return fmt.Errorf("%w: %v is not a shift", ErrBadArgument, op)
	}
	if amount < 0 {
		return fmt.Errorf("%w: shift amount %d", ErrBadArgument, amount)
	}
	ao, do, err := d.pair(a, dst)
	if err != nil {
		return err
	}
	ev := d.begin(ClassExec)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{
			Kind: cmdstream.KindExec, Form: cmdstream.FormShift,
			Op: op.String(), Type: do.dt.String(), N: do.n,
			A: int64(a), Dst: int64(dst), Amount: amount,
		}
	}
	if d.cfg.Functional {
		if k := kernels.Shift(op, do.dt); k != nil && !d.cfg.ReferenceEval {
			err = d.forSpans(do, func(lo, hi int64) { k(do.data, ao.data, amount, lo, hi) })
		} else {
			err = d.forSpans(do, func(lo, hi int64) {
				for i := lo; i < hi; i++ {
					do.data[i] = evalShift(op, do.dt, ao.data[i], amount)
				}
			})
		}
		if err != nil {
			return err
		}
	}
	ferr := d.injectWrite(do, 0, do.n)
	d.finishExec(ev, isa.Command{Op: op, Type: do.dt, N: do.n, Scalar: int64(amount), Inputs: 1, WritesResult: true}, do)
	return ferr
}

// ExecSelect dispatches dst[i] = cond[i] != 0 ? a[i] : b[i].
func (d *Device) ExecSelect(cond, a, b, dst ObjID) (err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return err
	}
	co, err := d.obj(cond)
	if err != nil {
		return err
	}
	ao, bo, do, err := d.triple(a, b, dst, false)
	if err != nil {
		return err
	}
	if co.n != do.n {
		return fmt.Errorf("%w: cond length %d vs %d", ErrShapeMismatch, co.n, do.n)
	}
	ev := d.begin(ClassExec)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{
			Kind: cmdstream.KindExec, Form: cmdstream.FormSelect,
			Op: isa.OpSelect.String(), Type: do.dt.String(), N: do.n,
			Cond: int64(cond), A: int64(a), B: int64(b), Dst: int64(dst),
		}
	}
	if d.cfg.Functional {
		// Type-independent on canonical carriers; the kernel is the
		// reference semantics, so no ReferenceEval branch exists.
		err = d.forSpans(do, func(lo, hi int64) { kernels.Select(do.data, co.data, ao.data, bo.data, lo, hi) })
		if err != nil {
			return err
		}
	}
	ferr := d.injectWrite(do, 0, do.n)
	d.finishExec(ev, isa.Command{Op: isa.OpSelect, Type: do.dt, N: do.n, Inputs: 3, WritesResult: true}, do)
	return ferr
}

// Broadcast fills dst with a scalar value.
func (d *Device) Broadcast(dst ObjID, val int64) (err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return err
	}
	do, err := d.obj(dst)
	if err != nil {
		return err
	}
	v := do.dt.Truncate(val)
	ev := d.begin(ClassExec)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{
			Kind: cmdstream.KindExec, Form: cmdstream.FormBroadcast,
			Op: isa.OpBroadcast.String(), Type: do.dt.String(), N: do.n,
			Dst: int64(dst), Scalar: val,
		}
	}
	if d.cfg.Functional {
		err = d.forSpans(do, func(lo, hi int64) { kernels.Fill(do.data, v, lo, hi) })
		if err != nil {
			return err
		}
	}
	ferr := d.injectWrite(do, 0, do.n)
	d.finishExec(ev, isa.Command{Op: isa.OpBroadcast, Type: do.dt, N: do.n, Scalar: v, Inputs: 0, WritesResult: true}, do)
	return ferr
}

// RedSum reduces the object to one int64 sum (no truncation: the paper's
// reduction accumulates into a wide register).
func (d *Device) RedSum(a ObjID) (_ int64, err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return 0, err
	}
	ao, err := d.obj(a)
	if err != nil {
		return 0, err
	}
	var sum int64
	if d.cfg.Functional {
		// Per-shard partial sums merged in ascending core order. Wrapping
		// int64 addition is associative, so the result is bit-identical to
		// the serial accumulation for any shard decomposition. Canonical
		// carriers sum directly (see kernels.Sum): sign-extension gives the
		// host view for signed types, and a uint64's raw-bit carrier wraps
		// identically to uint64 addition modulo 2^64.
		parts, err := spansCollect(d, ao, func(lo, hi int64) int64 {
			return kernels.Sum(ao.data, lo, hi)
		})
		if err != nil {
			return 0, err
		}
		for _, p := range parts {
			sum += p
		}
	}
	ev := d.begin(ClassExec)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{
			Kind: cmdstream.KindExec, Form: cmdstream.FormRedSum,
			Op: isa.OpRedSum.String(), Type: ao.dt.String(), N: ao.n,
			A: int64(a), Result: sum,
		}
	}
	d.finishExec(ev, isa.Command{Op: isa.OpRedSum, Type: ao.dt, N: ao.n, Inputs: 1}, ao)
	return sum, nil
}

// RedSumSeg reduces each consecutive segment of segLen elements to one sum,
// returning n/segLen partial sums (the batched-GEMV building block).
func (d *Device) RedSumSeg(a ObjID, segLen int64) (_ []int64, err error) {
	if d.guarded() {
		defer guard(&err)
	}
	if err := d.start(); err != nil {
		return nil, err
	}
	ao, err := d.obj(a)
	if err != nil {
		return nil, err
	}
	if segLen <= 0 || ao.n%segLen != 0 {
		return nil, fmt.Errorf("%w: segment length %d for object of %d", ErrBadArgument, segLen, ao.n)
	}
	var sums []int64
	if d.cfg.Functional {
		sums = make([]int64, ao.n/segLen)
		// Shard boundaries need not align to segments: each shard keeps
		// partials only for the segments it overlaps, and the partials are
		// folded in serially in ascending core order after the pool drains.
		type part struct {
			seg0 int64
			vals []int64
		}
		parts, err := spansCollect(d, ao, func(lo, hi int64) part {
			seg0 := lo / segLen
			p := part{seg0: seg0, vals: make([]int64, (hi-1)/segLen-seg0+1)}
			kernels.SumSeg(ao.data, lo, hi, segLen, seg0, p.vals)
			return p
		})
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			for k, v := range p.vals {
				sums[p.seg0+int64(k)] += v
			}
		}
	}
	ev := d.begin(ClassExec)
	if d.pipe.wantRecord() {
		ev.Record = cmdstream.Record{
			Kind: cmdstream.KindExec, Form: cmdstream.FormRedSumSeg,
			Op: isa.OpRedSumSeg.String(), Type: ao.dt.String(), N: ao.n,
			A: int64(a), SegLen: segLen,
			// Detach the results from the slice handed to the caller.
			Results: append([]int64(nil), sums...),
		}
	}
	d.finishExec(ev, isa.Command{Op: isa.OpRedSumSeg, Type: ao.dt, N: ao.n, SegLen: segLen, Inputs: 1}, ao)
	return sums, nil
}

// pair resolves a unary op's operands and checks shapes.
func (d *Device) pair(a, dst ObjID) (*Object, *Object, error) {
	return d.pairTyped(a, dst, false)
}

// pairTyped resolves operands; with dstTypeFree the destination may have a
// different element type (mask-producing compares).
func (d *Device) pairTyped(a, dst ObjID, dstTypeFree bool) (*Object, *Object, error) {
	ao, err := d.obj(a)
	if err != nil {
		return nil, nil, err
	}
	do, err := d.obj(dst)
	if err != nil {
		return nil, nil, err
	}
	if ao.n != do.n || (!dstTypeFree && ao.dt != do.dt) {
		return nil, nil, fmt.Errorf("%w: (%d,%v) vs (%d,%v)", ErrShapeMismatch, ao.n, ao.dt, do.n, do.dt)
	}
	return ao, do, nil
}

// triple resolves a binary op's operands and checks shapes.
func (d *Device) triple(a, b, dst ObjID, dstTypeFree bool) (*Object, *Object, *Object, error) {
	ao, err := d.obj(a)
	if err != nil {
		return nil, nil, nil, err
	}
	bo, err := d.obj(b)
	if err != nil {
		return nil, nil, nil, err
	}
	do, err := d.obj(dst)
	if err != nil {
		return nil, nil, nil, err
	}
	if ao.n != bo.n || ao.dt != bo.dt {
		return nil, nil, nil, fmt.Errorf("%w: inputs (%d,%v) vs (%d,%v)",
			ErrShapeMismatch, ao.n, ao.dt, bo.n, bo.dt)
	}
	if ao.n != do.n || (!dstTypeFree && ao.dt != do.dt) {
		return nil, nil, nil, fmt.Errorf("%w: dst (%d,%v) for inputs (%d,%v)",
			ErrShapeMismatch, do.n, do.dt, ao.n, ao.dt)
	}
	return ao, bo, do, nil
}

// Reductions accumulate canonical carriers directly — there is no separate
// "signed view" to take. The invariant the old signedView helper guarded:
// stored values are already truncated (sign-extended for signed types,
// zero-extended for unsigned sub-64-bit types), so every carrier equals its
// host-visible value; uint64 elements carry raw bits, and wrapping int64
// addition of raw bits is bit-identical to uint64 addition modulo 2^64.

// evalBinary computes one element of a binary op with the type's wraparound
// and signedness semantics. Inputs must be canonical (truncated).
func evalBinary(op isa.Op, dt isa.DataType, a, b int64) int64 {
	switch op {
	case isa.OpAdd:
		return dt.Truncate(a + b)
	case isa.OpSub:
		return dt.Truncate(a - b)
	case isa.OpMul:
		return dt.Truncate(a * b)
	case isa.OpDiv:
		return evalDiv(dt, a, b)
	case isa.OpAnd:
		return dt.Truncate(a & b)
	case isa.OpOr:
		return dt.Truncate(a | b)
	case isa.OpXor:
		return dt.Truncate(a ^ b)
	case isa.OpXnor:
		return dt.Truncate(^(a ^ b))
	case isa.OpMin:
		if dt.Compare(a, b) <= 0 {
			return a
		}
		return b
	case isa.OpMax:
		if dt.Compare(a, b) >= 0 {
			return a
		}
		return b
	case isa.OpLt:
		return b2i(dt.Compare(a, b) < 0)
	case isa.OpGt:
		return b2i(dt.Compare(a, b) > 0)
	case isa.OpEq:
		return b2i(a == b)
	default:
		panic(fmt.Sprintf("device: evalBinary(%v)", op))
	}
}

// evalDiv computes truncated integer division with the restoring-array
// hardware's semantics: division by zero yields an all-ones magnitude
// quotient, sign-adjusted for signed types. For non-zero divisors this
// matches Go's truncated division exactly (including INT_MIN / -1
// wrapping back to INT_MIN).
func evalDiv(dt isa.DataType, a, b int64) int64 {
	mask := uint64(1)<<uint(dt.Bits()) - 1
	if dt.Bits() == 64 {
		mask = ^uint64(0)
	}
	if !dt.Signed() {
		ua, ub := uint64(a)&mask, uint64(b)&mask
		if ub == 0 {
			return dt.Truncate(int64(mask))
		}
		return dt.Truncate(int64(ua / ub))
	}
	neg := (a < 0) != (b < 0)
	mag := func(v int64) uint64 {
		if v < 0 {
			return uint64(-v) & mask // INT_MIN maps to 2^(n-1), its magnitude
		}
		return uint64(v)
	}
	ua, ub := mag(a), mag(b)
	var q uint64
	if ub == 0 {
		q = mask
	} else {
		q = ua / ub
	}
	if neg {
		return dt.Truncate(-int64(q))
	}
	return dt.Truncate(int64(q))
}

// evalUnary computes one element of a unary op.
func evalUnary(op isa.Op, dt isa.DataType, a int64) int64 {
	switch op {
	case isa.OpNot:
		return dt.Truncate(^a)
	case isa.OpAbs:
		if dt.Signed() && a < 0 {
			return dt.Truncate(-a)
		}
		return a
	case isa.OpPopCount:
		mask := uint64(1)<<uint(dt.Bits()) - 1
		if dt.Bits() == 64 {
			mask = ^uint64(0)
		}
		return int64(bits.OnesCount64(uint64(a) & mask))
	case isa.OpSbox:
		return dt.Truncate(int64(aesSbox[byte(a)]))
	case isa.OpSboxInv:
		return dt.Truncate(int64(aesSboxInv[byte(a)]))
	default:
		panic(fmt.Sprintf("device: evalUnary(%v)", op))
	}
}

// evalShift computes one element of a shift.
func evalShift(op isa.Op, dt isa.DataType, a int64, amount int) int64 {
	if amount >= dt.Bits() {
		if op == isa.OpShiftR && dt.Signed() && a < 0 {
			return dt.Truncate(-1)
		}
		return 0
	}
	if op == isa.OpShiftL {
		return dt.Truncate(a << uint(amount))
	}
	if dt.Signed() {
		return dt.Truncate(a >> uint(amount))
	}
	mask := uint64(1)<<uint(dt.Bits()) - 1
	if dt.Bits() == 64 {
		mask = ^uint64(0)
	}
	return dt.Truncate(int64((uint64(a) & mask) >> uint(amount)))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
