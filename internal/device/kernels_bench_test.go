package device

import (
	"fmt"
	"runtime"
	"testing"

	"pimeval/internal/dram"
	"pimeval/internal/isa"
	"pimeval/internal/kernels"
)

// BenchmarkExecKernels quantifies what the specialized element kernels buy
// over the golden per-element interpreter. Two tiers:
//
//   - micro/*: the raw element loop in isolation — the resolved kernel
//     against the equivalent evalBinary+Truncate loop the dispatcher ran
//     before this change — on representative (op, type) shapes at 64K
//     elements. This is the number the >=2x acceptance bar is read from.
//   - device/*: a full ExecBinary vecadd over 4M int32 through the device,
//     kernel path vs Config.ReferenceEval, serially and at the full worker
//     pool, so EXPERIMENTS.md can report end-to-end wall-clock including
//     dispatch, cost modeling, and span scheduling.
//
// scripts/bench.sh runs this benchmark and archives the output as
// BENCH_kernels.json.
func BenchmarkExecKernels(b *testing.B) {
	const n = 1 << 16
	shapes := []struct {
		op isa.Op
		dt isa.DataType
	}{
		{isa.OpAdd, isa.Int32},
		{isa.OpMul, isa.Int32},
		{isa.OpDiv, isa.Int32},
		{isa.OpLt, isa.Int32},
		{isa.OpAdd, isa.Int8},
		{isa.OpMul, isa.UInt64},
	}
	for _, sh := range shapes {
		op, dt := sh.op, sh.dt
		a, c := edgeVectors(dt, 31)
		for len(a) < n {
			a = append(a, a...)
			c = append(c, c...)
		}
		a, c = a[:n], c[:n]
		dst := make([]int64, n)
		name := fmt.Sprintf("micro/%v.%v", op, dt)
		b.Run(name+"/kernel", func(b *testing.B) {
			k := kernels.Binary(op, dt)
			if k == nil {
				b.Fatalf("no kernel for %v.%v", op, dt)
			}
			b.SetBytes(3 * n * 8)
			for i := 0; i < b.N; i++ {
				k(dst, a, c, 0, n)
			}
		})
		b.Run(name+"/reference", func(b *testing.B) {
			b.SetBytes(3 * n * 8)
			for i := 0; i < b.N; i++ {
				for j := int64(0); j < n; j++ {
					dst[j] = dt.Truncate(evalBinary(op, dt, a[j], c[j]))
				}
			}
		})
	}

	const devN = 1 << 22 // 4M int32, matches BenchmarkParallelScaling
	host := make([]int64, devN)
	for i := range host {
		host[i] = int64(int32(i*2654435761 + 12345))
	}
	workerCounts := []int{1}
	if ncpu := runtime.NumCPU(); ncpu > 1 {
		workerCounts = append(workerCounts, ncpu)
	}
	for _, w := range workerCounts {
		for _, ref := range []bool{false, true} {
			w, ref := w, ref
			path := "kernel"
			if ref {
				path = "reference"
			}
			b.Run(fmt.Sprintf("device/vecadd/workers=%d/%s", w, path), func(b *testing.B) {
				d, err := New(Config{
					Target: TargetFulcrum, Module: dram.DDR4(1),
					Functional: true, Workers: w, ReferenceEval: ref,
				})
				if err != nil {
					b.Fatal(err)
				}
				alloc := func() ObjID {
					id, err := d.Alloc(devN, isa.Int32)
					if err != nil {
						b.Fatal(err)
					}
					return id
				}
				ao, co, do := alloc(), alloc(), alloc()
				if err := d.CopyHostToDevice(ao, host); err != nil {
					b.Fatal(err)
				}
				if err := d.CopyHostToDevice(co, host); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(3 * devN * 4)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := d.ExecBinary(isa.OpAdd, ao, co, do); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
