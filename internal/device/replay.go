package device

import (
	"fmt"

	"pimeval/internal/cmdstream"
)

// NewFromStream builds a fresh device matching a recorded stream's header,
// without executing any records — the caller may enable tracing or recording
// on the new device before replaying. The header's target name must agree
// with its enum value, guarding against streams from a build with a
// different target numbering.
func NewFromStream(s *cmdstream.Stream, workers int) (*Device, error) {
	t := Target(s.Header.TargetID)
	if !t.Valid() || t.String() != s.Header.Target {
		return nil, fmt.Errorf("%w: stream target %q (id %d)", ErrBadArgument,
			s.Header.Target, s.Header.TargetID)
	}
	return New(Config{
		Target:     t,
		Module:     s.Header.Module,
		Functional: s.Header.Functional,
		Workers:    workers,
		// Carrying the recorded fault configuration makes replays fault
		// bit-for-bit identically: injection is keyed by (seed, write
		// sequence) and the stream fixes the operation order.
		Faults: s.Header.Faults,
	})
}

// Replay re-executes a recorded stream against the device. *Device satisfies
// cmdstream.Executor, so this is a thin wrapper kept for discoverability.
func (d *Device) Replay(s *cmdstream.Stream) error { return cmdstream.Replay(d, s) }
