package device

import (
	"fmt"

	"pimeval/internal/cmdstream"
)

// NewFromHeader builds a fresh device matching a recorded stream's header,
// without executing any records — the caller may enable tracing or recording
// on the new device before replaying. The header's target name must agree
// with its enum value, guarding against streams from a build with a
// different target numbering.
func NewFromHeader(h cmdstream.Header, workers int) (*Device, error) {
	t := Target(h.TargetID)
	if !t.Valid() || t.String() != h.Target {
		return nil, fmt.Errorf("%w: stream target %q (id %d)", ErrBadArgument,
			h.Target, h.TargetID)
	}
	return New(Config{
		Target:     t,
		Module:     h.Module,
		Functional: h.Functional,
		Workers:    workers,
		// Carrying the recorded fault configuration makes replays fault
		// bit-for-bit identically: injection is keyed by (seed, write
		// sequence) and the stream fixes the operation order.
		Faults: h.Faults,
	})
}

// NewFromStream builds a fresh device matching a materialized stream's
// header; see NewFromHeader.
func NewFromStream(s *cmdstream.Stream, workers int) (*Device, error) {
	return NewFromHeader(s.Header, workers)
}

// Replay re-executes a recorded stream against the device. *Device satisfies
// cmdstream.Executor, so this is a thin wrapper kept for discoverability.
func (d *Device) Replay(s *cmdstream.Stream) error { return cmdstream.Replay(d, s) }

// ReplaySource re-executes a streaming source against the device with
// bounded memory: only the current record (or repeat-scope body) is
// resident, and chunked h2d payloads stream straight into device storage —
// *Device satisfies cmdstream.ChunkedExecutor via CopyHostToDeviceFrom.
func (d *Device) ReplaySource(src cmdstream.Source) error {
	return cmdstream.ReplaySource(d, src)
}

// ReplayPipelined re-executes a streaming source like ReplaySource, but
// runs decode on its own goroutine behind a bounded queue
// (cmdstream.PipelineSource), overlapping I/O + decode with execution.
// Record order — and therefore the device's write sequence, fault
// injection, statistics, latency, and energy — is exactly that of the
// serial path; only wall-clock time changes. The source is left open, as
// with ReplaySource.
func (d *Device) ReplayPipelined(src cmdstream.Source) error {
	ps := cmdstream.NewPipelineSource(src, 0)
	defer ps.Close()
	return cmdstream.ReplaySource(d, ps)
}
