package device

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"pimeval/internal/cmdstream"
)

// NewFromHeader builds a fresh device matching a recorded stream's header,
// without executing any records — the caller may enable tracing or recording
// on the new device before replaying. The header's target name must agree
// with its enum value, guarding against streams from a build with a
// different target numbering.
func NewFromHeader(h cmdstream.Header, workers int) (*Device, error) {
	t := Target(h.TargetID)
	if !t.Valid() || t.String() != h.Target {
		return nil, fmt.Errorf("%w: stream target %q (id %d)", ErrBadArgument,
			h.Target, h.TargetID)
	}
	return New(Config{
		Target:     t,
		Module:     h.Module,
		Functional: h.Functional,
		Workers:    workers,
		// Carrying the recorded fault configuration makes replays fault
		// bit-for-bit identically: injection is keyed by (seed, write
		// sequence) and the stream fixes the operation order.
		Faults: h.Faults,
	})
}

// NewFromStream builds a fresh device matching a materialized stream's
// header; see NewFromHeader.
func NewFromStream(s *cmdstream.Stream, workers int) (*Device, error) {
	return NewFromHeader(s.Header, workers)
}

// Replay re-executes a recorded stream against the device. *Device satisfies
// cmdstream.Executor, so this is a thin wrapper kept for discoverability.
func (d *Device) Replay(s *cmdstream.Stream) error { return cmdstream.Replay(d, s) }

// ReplaySource re-executes a streaming source against the device with
// bounded memory: only the current record (or repeat-scope body) is
// resident, and chunked h2d payloads stream straight into device storage —
// *Device satisfies cmdstream.ChunkedExecutor via CopyHostToDeviceFrom.
func (d *Device) ReplaySource(src cmdstream.Source) error {
	return cmdstream.ReplaySource(d, src)
}

// ReplayPipelined re-executes a streaming source like ReplaySource, but
// runs decode on its own goroutine behind a bounded queue
// (cmdstream.PipelineSource), overlapping I/O + decode with execution.
// Record order — and therefore the device's write sequence, fault
// injection, statistics, latency, and energy — is exactly that of the
// serial path; only wall-clock time changes. The source is left open, as
// with ReplaySource.
func (d *Device) ReplayPipelined(src cmdstream.Source) error {
	return d.ReplayPipelinedOpts(src, cmdstream.ReplayOptions{})
}

// ReplaySourceOpts is ReplaySource with resume and checkpoint control: it
// skips opts.Skip records before executing and invokes opts.Checkpoint at
// unit boundaries. Pair the checkpoint callback with WriteSnapshot to
// produce recovery points a later ReplayFrom can resume from.
func (d *Device) ReplaySourceOpts(src cmdstream.Source, opts cmdstream.ReplayOptions) error {
	return cmdstream.ReplaySourceOpts(d, src, opts)
}

// ReplayPipelinedOpts is ReplayPipelined with resume and checkpoint control;
// see ReplaySourceOpts. Skipping happens on the decoded record sequence, so
// cursors are interchangeable between the serial and pipelined paths.
func (d *Device) ReplayPipelinedOpts(src cmdstream.Source, opts cmdstream.ReplayOptions) error {
	ps := cmdstream.NewPipelineSource(src, 0)
	defer ps.Close()
	return cmdstream.ReplaySourceOpts(d, ps, opts)
}

// ReplayFrom restores a device from a snapshot and resumes replaying src
// from the snapshot's cursor: the device skips the records the snapshotted
// run already executed and continues with the tail. src must be the same
// stream the snapshot was taken during — its header must describe the same
// device — and the result is bit-identical to an uninterrupted replay.
// Further checkpoints fire per opts; opts.Skip is overridden by the
// snapshot's cursor.
func ReplayFrom(snapshot io.Reader, src cmdstream.Source, workers int, opts cmdstream.ReplayOptions) (*Device, error) {
	d, cursor, err := RestoreSnapshot(snapshot, workers)
	if err != nil {
		return nil, err
	}
	if err := d.CheckResume(src); err != nil {
		return nil, err
	}
	opts.Skip = cursor
	if err := cmdstream.ReplaySourceOpts(d, src, opts); err != nil {
		return nil, err
	}
	return d, nil
}

// CheckResume verifies that src is a stream this device may resume: its
// header must describe the same device (see compatibleHeader). Callers that
// restore a snapshot and drive the tail replay themselves run this check
// first; ReplayFrom does it automatically.
func (d *Device) CheckResume(src cmdstream.Source) error {
	return compatibleHeader(d.streamHeader(), src.Header())
}

// compatibleHeader verifies that the stream being resumed describes the same
// device as the snapshot it resumes from: target, module geometry,
// functional mode, and fault configuration must all agree. Optimizer pass
// names are excluded — a device header never records them — so resuming a
// stream whose record sequence differs from the snapshotted replay's is the
// caller's responsibility (cursors are positions in one specific sequence).
func compatibleHeader(snap, stream cmdstream.Header) error {
	snapJSON, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	// Normalize the fields a snapshot header never carries.
	norm := stream
	norm.Optimized = nil
	streamJSON, err := json.Marshal(norm)
	if err != nil {
		return err
	}
	if !bytes.Equal(snapJSON, streamJSON) {
		return fmt.Errorf("%w: stream header does not match snapshot (snapshot %s, stream %s)",
			ErrBadArgument, snapJSON, streamJSON)
	}
	return nil
}
