package device

import (
	"pimeval/internal/cmdstream"
	"pimeval/internal/perf"
	"pimeval/internal/stats"
)

// EventClass tells a sink what kind of operation an event describes.
type EventClass int

// The event classes emitted by the dispatch pipeline.
const (
	// ClassStructural events (alloc, free, repeat scopes) carry no cost;
	// only record-consuming sinks care about them.
	ClassStructural EventClass = iota
	// ClassExec events are PIM command dispatches.
	ClassExec
	// ClassCopy events are data movements (host<->device, device<->device).
	ClassCopy
	// ClassHost events are host-executed phases charged to the device.
	ClassHost
)

// Event is what the dispatch pipeline fans out to sinks after an operation
// clears validation, lowering, functional execution, and the cost model. The
// pipeline reuses one event buffer across dispatches (device dispatch is
// single-threaded), so sinks must copy anything they retain.
type Event struct {
	// Record is the operation's command-stream IR record. Its payload
	// fields are only materialized when a record-consuming sink (the
	// stream recorder or a plugged-in sink) is attached; the built-in
	// stats and trace sinks never read it.
	Record cmdstream.Record
	Class  EventClass

	// Name is the trace mnemonic ("add.int32", "copy.h2d"); empty for
	// events that never trace (host phases, structural events).
	Name string
	// N is the traced quantity: elements processed or bytes moved.
	N int64
	// TraceCost is the cost shown in trace entries. For exec commands this
	// is the raw per-dispatch cost (no background energy, no repeat
	// scaling); for copies it is the charged (scaled) cost — both exactly
	// as the pre-pipeline simulator reported them.
	TraceCost perf.Cost
	// Reps is the WithRepeat factor in effect at dispatch.
	Reps int64

	// Cost is the fully charged cost recorded into statistics: background
	// energy added (exec commands) and scaled by Reps.
	Cost perf.Cost
	// Category is the Figure-8 operation-category label (exec events).
	Category string

	// Copy traffic attribution, already scaled by Reps (copy events).
	H2D, D2H, D2D int64
}

// Sink consumes dispatch events. The built-in statistics, trace, and stream
// recorder sinks implement it, and additional sinks can be attached with
// AddSink to observe the command stream without touching the dispatcher.
type Sink interface {
	Emit(ev *Event)
}

// AddSink attaches an additional sink to the dispatch pipeline's fan-out
// stage. Sinks are invoked in attachment order after the built-in stats,
// trace, and recorder sinks, on every event (including structural ones).
// The *Event is only valid during the call; copy what you keep.
func (d *Device) AddSink(s Sink) { d.pipe.extra = append(d.pipe.extra, s) }

// statsSink feeds the device's statistics collector: command costs, copy
// traffic, and host-phase costs, exactly as charged by the cost stage.
type statsSink struct {
	st *stats.Stats
}

// Emit routes the event's charged cost into the statistics collector.
func (s *statsSink) Emit(ev *Event) {
	switch ev.Class {
	case ClassExec:
		s.st.RecordCmd(ev.Name, ev.Category, ev.Reps, ev.Cost)
	case ClassCopy:
		s.st.RecordCopy(ev.H2D, ev.D2H, ev.D2D, ev.Cost)
	case ClassHost:
		s.st.RecordHost(ev.Cost)
	}
}

// recorderSink captures the lowered IR records of every dispatched
// operation, producing the stream behind record/replay.
type recorderSink struct {
	recs []cmdstream.Record
	seq  int64
}

// Emit appends the event's record with the next stream sequence number.
func (r *recorderSink) Emit(ev *Event) {
	rec := ev.Record
	r.seq++
	rec.Seq = r.seq
	r.recs = append(r.recs, rec)
}

// StartRecording attaches the stream recorder sink: every subsequently
// dispatched operation is lowered into a command-stream record. Recording a
// functional run captures host-to-device payloads and reduction results, so
// the stream replays to bit-identical data and statistics.
func (d *Device) StartRecording() {
	if d.pipe.recorder == nil {
		d.pipe.recorder = &recorderSink{}
	}
}

// Recording reports whether the stream recorder is attached.
func (d *Device) Recording() bool { return d.pipe.recorder != nil }

// RecordedStream returns a snapshot of the captured command stream with a
// header describing this device, or nil if recording was never started.
func (d *Device) RecordedStream() *cmdstream.Stream {
	rec := d.pipe.recorder
	if rec == nil {
		return nil
	}
	return &cmdstream.Stream{
		Header: cmdstream.Header{
			Version:    cmdstream.Version,
			Target:     d.cfg.Target.String(),
			TargetID:   int(d.cfg.Target),
			Module:     d.cfg.Module,
			Functional: d.cfg.Functional,
			Faults:     d.cfg.Faults,
		},
		Records: append([]cmdstream.Record(nil), rec.recs...),
	}
}
