package device

import (
	"pimeval/internal/cmdstream"
	"pimeval/internal/perf"
	"pimeval/internal/stats"
)

// EventClass tells a sink what kind of operation an event describes.
type EventClass int

// The event classes emitted by the dispatch pipeline.
const (
	// ClassStructural events (alloc, free, repeat scopes) carry no cost;
	// only record-consuming sinks care about them.
	ClassStructural EventClass = iota
	// ClassExec events are PIM command dispatches.
	ClassExec
	// ClassCopy events are data movements (host<->device, device<->device).
	ClassCopy
	// ClassHost events are host-executed phases charged to the device.
	ClassHost
)

// Event is what the dispatch pipeline fans out to sinks after an operation
// clears validation, lowering, functional execution, and the cost model. The
// pipeline reuses one event buffer across dispatches (device dispatch is
// single-threaded), so sinks must copy anything they retain.
type Event struct {
	// Record is the operation's command-stream IR record. Its payload
	// fields are only materialized when a record-consuming sink (the
	// stream recorder or a plugged-in sink) is attached; the built-in
	// stats and trace sinks never read it.
	Record cmdstream.Record
	Class  EventClass

	// Name is the trace mnemonic ("add.int32", "copy.h2d"); empty for
	// events that never trace (host phases, structural events).
	Name string
	// N is the traced quantity: elements processed or bytes moved.
	N int64
	// TraceCost is the cost shown in trace entries. For exec commands this
	// is the raw per-dispatch cost (no background energy, no repeat
	// scaling); for copies it is the charged (scaled) cost — both exactly
	// as the pre-pipeline simulator reported them.
	TraceCost perf.Cost
	// Reps is the WithRepeat factor in effect at dispatch.
	Reps int64

	// Cost is the fully charged cost recorded into statistics: background
	// energy added (exec commands) and scaled by Reps.
	Cost perf.Cost
	// Category is the Figure-8 operation-category label (exec events).
	Category string

	// Copy traffic attribution, already scaled by Reps (copy events).
	H2D, D2H, D2D int64
}

// Sink consumes dispatch events. The built-in statistics, trace, and stream
// recorder sinks implement it, and additional sinks can be attached with
// AddSink to observe the command stream without touching the dispatcher.
type Sink interface {
	Emit(ev *Event)
}

// AddSink attaches an additional sink to the dispatch pipeline's fan-out
// stage. Sinks are invoked in attachment order after the built-in stats,
// trace, and recorder sinks, on every event (including structural ones).
// The *Event is only valid during the call; copy what you keep.
func (d *Device) AddSink(s Sink) { d.pipe.extra = append(d.pipe.extra, s) }

// statsSink feeds the device's statistics collector: command costs, copy
// traffic, and host-phase costs, exactly as charged by the cost stage.
type statsSink struct {
	st *stats.Stats
}

// Emit routes the event's charged cost into the statistics collector.
func (s *statsSink) Emit(ev *Event) {
	switch ev.Class {
	case ClassExec:
		s.st.RecordCmd(ev.Name, ev.Category, ev.Reps, ev.Cost)
	case ClassCopy:
		s.st.RecordCopy(ev.H2D, ev.D2H, ev.D2D, ev.Cost)
	case ClassHost:
		s.st.RecordHost(ev.Cost)
	}
}

// recorderSink captures the lowered IR records of every dispatched
// operation, producing the stream behind record/replay. Records are fanned
// out to any attached cmdstream.Sinks as they are produced (the streaming
// recording path — a multi-GB trace flows straight to its encoder without
// materializing), and optionally accumulated in memory for RecordedStream.
type recorderSink struct {
	recs    []cmdstream.Record
	collect bool             // accumulate into recs (StartRecording)
	sinks   []cmdstream.Sink // streaming destinations (StartRecordingTo)
	seq     int64
	err     error // first sink write failure, surfaced by FinishRecording
}

// Emit stamps the event's record with the next stream sequence number and
// fans it out.
func (r *recorderSink) Emit(ev *Event) {
	rec := ev.Record
	r.seq++
	rec.Seq = r.seq
	if r.collect {
		r.recs = append(r.recs, rec)
	}
	for _, s := range r.sinks {
		if r.err != nil {
			break
		}
		r.err = s.Write(&rec)
	}
}

// streamHeader describes this device as a command-stream header.
func (d *Device) streamHeader() cmdstream.Header {
	return cmdstream.Header{
		Version:    cmdstream.Version,
		Target:     d.cfg.Target.String(),
		TargetID:   int(d.cfg.Target),
		Module:     d.cfg.Module,
		Functional: d.cfg.Functional,
		Faults:     d.cfg.Faults,
	}
}

// StartRecording attaches the stream recorder sink: every subsequently
// dispatched operation is lowered into a command-stream record, accumulated
// in memory for RecordedStream. Recording a functional run captures
// host-to-device payloads and reduction results, so the stream replays to
// bit-identical data and statistics.
func (d *Device) StartRecording() {
	if d.pipe.recorder == nil {
		d.pipe.recorder = &recorderSink{}
	}
	d.pipe.recorder.collect = true
}

// StartRecordingTo attaches a streaming recording destination: the sink's
// Begin is called immediately with this device's stream header, and every
// subsequently dispatched operation's record is written to it as it is
// produced, so the trace never materializes in memory. Multiple sinks (and
// in-memory recording via StartRecording) may be active at once; sink
// write failures are deferred to FinishRecording.
func (d *Device) StartRecordingTo(sink cmdstream.Sink) error {
	if err := sink.Begin(d.streamHeader()); err != nil {
		return err
	}
	if d.pipe.recorder == nil {
		d.pipe.recorder = &recorderSink{}
	}
	d.pipe.recorder.sinks = append(d.pipe.recorder.sinks, sink)
	return nil
}

// FinishRecording closes every streaming recording sink, returning the
// first error any of them reported (during writes or on close). In-memory
// recording, if active, stays active. Calling it with no streaming sinks
// attached is a no-op.
func (d *Device) FinishRecording() error {
	rec := d.pipe.recorder
	if rec == nil {
		return nil
	}
	err := rec.err
	rec.err = nil
	for _, s := range rec.sinks {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	rec.sinks = nil
	return err
}

// Recording reports whether the stream recorder is attached.
func (d *Device) Recording() bool { return d.pipe.recorder != nil }

// RecordedStream returns a snapshot of the in-memory captured command
// stream with a header describing this device, or nil if in-memory
// recording (StartRecording) was never started.
func (d *Device) RecordedStream() *cmdstream.Stream {
	rec := d.pipe.recorder
	if rec == nil || !rec.collect {
		return nil
	}
	return &cmdstream.Stream{
		Header:  d.streamHeader(),
		Records: append([]cmdstream.Record(nil), rec.recs...),
	}
}
