package paralleltest

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"pimeval/internal/device"
	"pimeval/internal/dram"
	"pimeval/internal/fault"
	"pimeval/internal/isa"
)

// Fault-injection determinism proofs. Injection runs serially in the
// dispatcher and is keyed by (seed, write sequence number), so for a fixed
// fault configuration the injected faults — and therefore every observable:
// output data, fault/ECC counters, statistics, and the command trace — must
// be bit-identical regardless of the worker-pool size, and must reproduce
// exactly when a recorded stream is replayed.

// faultCfg is a configuration dense enough to exercise transient flips,
// stuck-at bits, and the ECC adjudication path in one short script.
func faultCfg(seed int64, ecc bool) *fault.Config {
	return &fault.Config{
		Seed:             seed,
		TransientBitRate: 1e-4,
		StuckBits:        16,
		ECC:              ecc,
	}
}

// faultSnapshot is one fault run's complete observable state.
type faultSnapshot struct {
	snapshot
	Counts fault.Counts
}

// runFaultScript executes a fixed command script on a fresh fault-injecting
// device and captures every observable. The script mixes host-to-device
// copies, binary/scalar/unary execs, a device-to-device copy, and a
// reduction so faults land on every write path.
func runFaultScript(t *testing.T, tgt device.Target, workers int, fc *fault.Config, record bool) (faultSnapshot, *device.Device) {
	t.Helper()
	d, err := device.New(device.Config{
		Target: tgt, Module: dram.DDR4(1), Functional: true, Workers: workers,
		Faults: fc,
	})
	if err != nil {
		t.Fatalf("New(%v, workers=%d): %v", tgt, workers, err)
	}
	d.EnableTrace()
	if record {
		d.StartRecording()
	}
	snap := faultSnapshot{snapshot: snapshot{
		Outputs: make(map[string][]int64),
		Sums:    make(map[string]int64),
		SegSums: make(map[string][]int64),
	}}
	runFaultOps(t, d, &snap)
	return snap, d
}

// runFaultOps drives the script against an already-built device and fills
// the snapshot; shared between fresh runs and replay verification.
func runFaultOps(t *testing.T, d *device.Device, snap *faultSnapshot) {
	t.Helper()
	const dt = isa.Int32
	av, bv := inputs(dt, 99)
	alloc := func(vals []int64) device.ObjID {
		id, err := d.Alloc(nElems, dt)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if vals != nil {
			if err := d.CopyHostToDevice(id, vals); err != nil {
				t.Fatalf("CopyHostToDevice: %v", err)
			}
		}
		return id
	}
	a, b, dst, mirror := alloc(av), alloc(bv), alloc(nil), alloc(nil)
	read := func(key string, id device.ObjID) {
		out, err := d.CopyDeviceToHost(id)
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		snap.Outputs[key] = out
	}
	for _, op := range []isa.Op{isa.OpAdd, isa.OpMul, isa.OpXor} {
		if err := d.ExecBinary(op, a, b, dst); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		read("bin."+op.String(), dst)
	}
	if err := d.ExecScalar(isa.OpAdd, a, 7, dst); err != nil {
		t.Fatalf("scalar add: %v", err)
	}
	read("scalar.add", dst)
	if err := d.ExecUnary(isa.OpNot, a, dst); err != nil {
		t.Fatalf("not: %v", err)
	}
	read("un.not", dst)
	if err := d.CopyDeviceToDevice(dst, mirror); err != nil {
		t.Fatalf("d2d: %v", err)
	}
	read("d2d", mirror)
	sum, err := d.RedSum(dst)
	if err != nil {
		t.Fatalf("redsum: %v", err)
	}
	snap.Sums["dst"] = sum

	st := d.Stats()
	snap.Commands = st.Commands()
	snap.OpCounts = st.OpCounts()
	snap.Copies = st.Copies()
	snap.HostNS, snap.HostPJ = st.Host().TimeNS, st.Host().EnergyPJ
	snap.KernelNS, snap.KernelPJ = st.Kernel().TimeNS, st.Kernel().EnergyPJ
	snap.Trace = d.TraceString()
	snap.Counts = d.FaultCounts()
}

// diffFault asserts two fault runs are bit-identical in every observable,
// including the fault/ECC counters.
func diffFault(t *testing.T, label string, ref, got faultSnapshot) {
	t.Helper()
	diff(t, label, ref.snapshot, got.snapshot)
	if got.Counts != ref.Counts {
		t.Errorf("%s: fault counts differ: %+v vs %+v", label, got.Counts, ref.Counts)
	}
}

// TestFaultInjectionDeterministicAcrossWorkers is the determinism proof for
// the fault stage: a fixed seed produces bit-identical faulted data, fault
// counters, statistics, and traces at every worker-pool size, with and
// without the ECC model.
func TestFaultInjectionDeterministicAcrossWorkers(t *testing.T) {
	for _, tgt := range []device.Target{device.TargetFulcrum, device.TargetBitSerial} {
		for _, ecc := range []bool{false, true} {
			tgt, ecc := tgt, ecc
			t.Run(fmt.Sprintf("%v/ecc=%v", tgt, ecc), func(t *testing.T) {
				t.Parallel()
				ref, _ := runFaultScript(t, tgt, 1, faultCfg(12345, ecc), false)
				if !ref.Counts.Any() {
					t.Fatal("fault configuration injected nothing; test is vacuous")
				}
				counts := append([]int{}, workerCounts...)
				counts = append(counts, runtime.NumCPU())
				for _, w := range counts {
					got, _ := runFaultScript(t, tgt, w, faultCfg(12345, ecc), false)
					diffFault(t, fmt.Sprintf("%v/ecc=%v/workers=%d", tgt, ecc, w), ref, got)
				}
			})
		}
	}
}

// TestFaultInjectionSeedSelectsFaults pins that the seed actually drives the
// injection: two different seeds at the same rate must diverge somewhere.
func TestFaultInjectionSeedSelectsFaults(t *testing.T) {
	a, _ := runFaultScript(t, device.TargetFulcrum, 1, faultCfg(1, false), false)
	b, _ := runFaultScript(t, device.TargetFulcrum, 1, faultCfg(2, false), false)
	if reflect.DeepEqual(a.Outputs, b.Outputs) && a.Counts == b.Counts {
		t.Error("seeds 1 and 2 produced identical faulted runs; seed is not wired through")
	}
}

// TestFaultReplayReproducesInjection records a faulted run, replays the
// stream on a fresh device built from its header (at a different worker
// count), and asserts the replayed data and fault counters match the
// original bit for bit — the record/replay half of the determinism contract.
func TestFaultReplayReproducesInjection(t *testing.T) {
	for _, ecc := range []bool{false, true} {
		ecc := ecc
		t.Run(fmt.Sprintf("ecc=%v", ecc), func(t *testing.T) {
			t.Parallel()
			ref, d := runFaultScript(t, device.TargetFulcrum, 4, faultCfg(777, ecc), true)
			s := d.RecordedStream()
			if s == nil || s.Header.Faults == nil {
				t.Fatal("recorded stream missing fault configuration in header")
			}
			rd, err := device.NewFromStream(s, 2)
			if err != nil {
				t.Fatalf("NewFromStream: %v", err)
			}
			if err := rd.Replay(s); err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if got := rd.FaultCounts(); got != ref.Counts {
				t.Errorf("replay fault counts differ: %+v vs %+v", got, ref.Counts)
			}
			// The replayed device holds the same objects under the same IDs
			// (allocation order is fixed by the stream); the faulted payloads
			// must match the original run's reads.
			// Object 3 is dst, object 4 is mirror (IDs 1..4 in alloc order).
			for id, key := range map[device.ObjID]string{4: "d2d"} {
				out, err := rd.CopyDeviceToHost(id)
				if err != nil {
					t.Fatalf("replay read obj %d: %v", id, err)
				}
				if !reflect.DeepEqual(out, ref.Outputs[key]) {
					t.Errorf("replayed object %d differs from original %q output", id, key)
				}
			}
		})
	}
}

// TestNoFaultConfigMatchesNilConfig pins the byte-identical no-fault path: a
// zero-valued fault configuration (nothing enabled) behaves exactly like no
// configuration at all — same data, stats, trace, and zero fault counters.
func TestNoFaultConfigMatchesNilConfig(t *testing.T) {
	ref, _ := runFaultScript(t, device.TargetFulcrum, 4, nil, false)
	got, d := runFaultScript(t, device.TargetFulcrum, 4, &fault.Config{Seed: 9}, false)
	if d.FaultCounts().Any() {
		t.Error("disabled fault config reported counts")
	}
	diffFault(t, "zero fault config vs nil", ref, got)
}
