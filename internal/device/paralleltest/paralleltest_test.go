// Package paralleltest is the differential test harness for the parallel
// sharded functional execution engine: for every command x data type x
// architecture it runs the serial reference engine (Workers=1) and the
// parallel engine (several worker counts) on identical deterministic inputs
// and asserts that output data, statistics, command traces, latency, and
// energy are bit-identical. This is the correctness proof behind the
// determinism guarantee documented in internal/device/parallel.go.
package paralleltest

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"pimeval/internal/device"
	"pimeval/internal/dram"
	"pimeval/internal/isa"
)

var allTargets = []device.Target{
	device.TargetBitSerial,
	device.TargetFulcrum,
	device.TargetBankLevel,
	device.TargetAnalogBitSerial,
}

var allTypes = []isa.DataType{
	isa.Int8, isa.Int16, isa.Int32, isa.Int64,
	isa.UInt8, isa.UInt16, isa.UInt32, isa.UInt64,
}

// workerCounts are the parallel configurations differenced against the
// Workers=1 reference. They deliberately include counts that do not divide
// the shard count evenly.
var workerCounts = []int{2, 3, 8}

// nElems spans many per-core regions (DDR4 x1 rank has 4096 subarray-level
// cores) and is divisible by segLen for the segmented reduction.
const (
	nElems = 8192
	segLen = 512
)

// inputs builds a deterministic operand pair seeded with the arithmetic
// edge cases: zero divisors, MinInt/-1 pairs, extremes, and sign changes.
func inputs(dt isa.DataType, seed int64) (a, b []int64) {
	r := rand.New(rand.NewSource(seed))
	a = make([]int64, nElems)
	b = make([]int64, nElems)
	edges := []int64{0, 1, -1, math.MinInt64, math.MaxInt64, math.MinInt8, math.MaxUint8, -128, 127}
	for i := range a {
		switch i % 7 {
		case 0:
			a[i], b[i] = edges[i%len(edges)], edges[(i/2)%len(edges)]
		case 1:
			a[i], b[i] = r.Int63()-r.Int63(), 0 // division by zero
		case 2:
			a[i], b[i] = math.MinInt64, -1 // MinInt / -1 wraparound
		default:
			a[i], b[i] = r.Int63()-r.Int63(), r.Int63()-r.Int63()
		}
		a[i], b[i] = dt.Truncate(a[i]), dt.Truncate(b[i])
	}
	return a, b
}

// snapshot captures every observable of one scripted run.
type snapshot struct {
	Outputs  map[string][]int64
	Sums     map[string]int64
	SegSums  map[string][]int64
	Commands interface{}
	OpCounts map[string]int64
	Copies   interface{}
	HostNS   float64
	HostPJ   float64
	KernelNS float64
	KernelPJ float64
	Trace    string
}

// runScript executes the full command script on a fresh device with the
// given worker count and returns the complete observable state. refEval
// selects the golden per-element evaluators instead of the specialized
// kernels (see device.Config.ReferenceEval).
func runScript(t *testing.T, tgt device.Target, dt isa.DataType, workers int, refEval bool) snapshot {
	t.Helper()
	d, err := device.New(device.Config{
		Target: tgt, Module: dram.DDR4(1), Functional: true, Workers: workers,
		ReferenceEval: refEval,
	})
	if err != nil {
		t.Fatalf("New(%v, workers=%d): %v", tgt, workers, err)
	}
	d.EnableTrace()

	av, bv := inputs(dt, 42)
	alloc := func(vals []int64) device.ObjID {
		id, err := d.Alloc(nElems, dt)
		if err != nil {
			t.Fatalf("%v/%v: Alloc: %v", tgt, dt, err)
		}
		if vals != nil {
			if err := d.CopyHostToDevice(id, vals); err != nil {
				t.Fatalf("%v/%v: Copy: %v", tgt, dt, err)
			}
		}
		return id
	}
	a, b, dst := alloc(av), alloc(bv), alloc(nil)
	cond := alloc(nil)
	if err := d.ExecBinary(isa.OpLt, a, b, cond); err != nil {
		t.Fatalf("lt for select mask: %v", err)
	}

	snap := snapshot{
		Outputs: make(map[string][]int64),
		Sums:    make(map[string]int64),
		SegSums: make(map[string][]int64),
	}
	read := func(key string, id device.ObjID) {
		out, err := d.CopyDeviceToHost(id)
		if err != nil {
			t.Fatalf("%v/%v: read %s: %v", tgt, dt, key, err)
		}
		snap.Outputs[key] = out
	}

	binaryOps := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpXnor, isa.OpMin, isa.OpMax, isa.OpLt, isa.OpGt, isa.OpEq,
	}
	for _, op := range binaryOps {
		if err := d.ExecBinary(op, a, b, dst); err != nil {
			t.Fatalf("%v/%v: %v: %v", tgt, dt, op, err)
		}
		read("bin."+op.String(), dst)
		if err := d.ExecScalar(op, a, 3, dst); err != nil {
			t.Fatalf("%v/%v: scalar %v: %v", tgt, dt, op, err)
		}
		read("scalar."+op.String(), dst)
	}
	unaryOps := []isa.Op{isa.OpNot, isa.OpAbs, isa.OpPopCount}
	if dt.Bits() == 8 {
		unaryOps = append(unaryOps, isa.OpSbox, isa.OpSboxInv)
	}
	for _, op := range unaryOps {
		if err := d.ExecUnary(op, a, dst); err != nil {
			t.Fatalf("%v/%v: %v: %v", tgt, dt, op, err)
		}
		read("un."+op.String(), dst)
	}
	for _, amount := range []int{0, 1, dt.Bits() - 1, dt.Bits(), dt.Bits() + 5} {
		for _, op := range []isa.Op{isa.OpShiftL, isa.OpShiftR} {
			if err := d.ExecShift(op, a, amount, dst); err != nil {
				t.Fatalf("%v/%v: %v by %d: %v", tgt, dt, op, amount, err)
			}
			read(op.String()+string(rune('0'+amount%10)), dst)
		}
	}
	if err := d.ExecSelect(cond, a, b, dst); err != nil {
		t.Fatalf("%v/%v: select: %v", tgt, dt, err)
	}
	read("select", dst)
	if err := d.Broadcast(dst, -99); err != nil {
		t.Fatalf("%v/%v: broadcast: %v", tgt, dt, err)
	}
	read("broadcast", dst)

	for key, id := range map[string]device.ObjID{"a": a, "b": b} {
		sum, err := d.RedSum(id)
		if err != nil {
			t.Fatalf("%v/%v: redsum %s: %v", tgt, dt, key, err)
		}
		snap.Sums[key] = sum
		segs, err := d.RedSumSeg(id, segLen)
		if err != nil {
			t.Fatalf("%v/%v: redsum.seg %s: %v", tgt, dt, key, err)
		}
		snap.SegSums[key] = segs
	}

	st := d.Stats()
	snap.Commands = st.Commands()
	snap.OpCounts = st.OpCounts()
	snap.Copies = st.Copies()
	snap.HostNS, snap.HostPJ = st.Host().TimeNS, st.Host().EnergyPJ
	snap.KernelNS, snap.KernelPJ = st.Kernel().TimeNS, st.Kernel().EnergyPJ
	snap.Trace = d.TraceString()
	return snap
}

// bitsEqual compares floats bit-for-bit (NaN-safe, no epsilon).
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// diff asserts two snapshots are bit-identical in every observable.
func diff(t *testing.T, label string, ref, got snapshot) {
	t.Helper()
	for key, want := range ref.Outputs {
		if !reflect.DeepEqual(got.Outputs[key], want) {
			t.Errorf("%s: output %q differs from serial reference", label, key)
		}
	}
	if !reflect.DeepEqual(got.Sums, ref.Sums) {
		t.Errorf("%s: RedSum differs: %v vs %v", label, got.Sums, ref.Sums)
	}
	if !reflect.DeepEqual(got.SegSums, ref.SegSums) {
		t.Errorf("%s: RedSumSeg differs", label)
	}
	if !reflect.DeepEqual(got.Commands, ref.Commands) {
		t.Errorf("%s: per-command stats differ:\n%v\nvs\n%v", label, got.Commands, ref.Commands)
	}
	if !reflect.DeepEqual(got.OpCounts, ref.OpCounts) {
		t.Errorf("%s: op-category counts differ", label)
	}
	if !reflect.DeepEqual(got.Copies, ref.Copies) {
		t.Errorf("%s: copy stats differ", label)
	}
	if !bitsEqual(got.HostNS, ref.HostNS) || !bitsEqual(got.HostPJ, ref.HostPJ) {
		t.Errorf("%s: host cost differs", label)
	}
	if !bitsEqual(got.KernelNS, ref.KernelNS) || !bitsEqual(got.KernelPJ, ref.KernelPJ) {
		t.Errorf("%s: kernel latency/energy differs: (%v,%v) vs (%v,%v)",
			label, got.KernelNS, got.KernelPJ, ref.KernelNS, ref.KernelPJ)
	}
	if got.Trace != ref.Trace {
		t.Errorf("%s: command trace differs", label)
	}
}

// TestParallelBitIdenticalToSerial is the differential proof: for every
// architecture and element type, the parallel engine at several worker
// counts reproduces the serial reference bit-for-bit across data, stats,
// trace, latency, and energy.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	for _, tgt := range allTargets {
		for _, dt := range allTypes {
			tgt, dt := tgt, dt
			t.Run(tgt.String()+"/"+dt.String(), func(t *testing.T) {
				t.Parallel()
				ref := runScript(t, tgt, dt, 1, false)
				if len(ref.Outputs) == 0 {
					t.Fatal("empty reference snapshot")
				}
				for _, w := range workerCounts {
					got := runScript(t, tgt, dt, w, false)
					diff(t, tgt.String()+"/"+dt.String()+"/workers="+string(rune('0'+w)), ref, got)
				}
			})
		}
	}
}

// TestParallelRepeatable runs the parallel engine twice with the same
// worker count and asserts run-to-run determinism (scheduling noise must
// not leak into any observable).
func TestParallelRepeatable(t *testing.T) {
	first := runScript(t, device.TargetFulcrum, isa.Int32, 8, false)
	second := runScript(t, device.TargetFulcrum, isa.Int32, 8, false)
	diff(t, "fulcrum/int32 repeat", first, second)
}

// TestKernelsBitIdenticalToReferenceEval is the differential proof for the
// specialized element kernels at the whole-device level: for every
// architecture and element type, the kernel path must reproduce the golden
// per-element evaluators (ReferenceEval) bit-for-bit across data, stats,
// trace, latency, and energy — serially and at the full worker pool.
func TestKernelsBitIdenticalToReferenceEval(t *testing.T) {
	for _, tgt := range allTargets {
		for _, dt := range allTypes {
			tgt, dt := tgt, dt
			t.Run(tgt.String()+"/"+dt.String(), func(t *testing.T) {
				t.Parallel()
				ref := runScript(t, tgt, dt, 1, true)
				if len(ref.Outputs) == 0 {
					t.Fatal("empty reference snapshot")
				}
				for _, w := range []int{1, runtime.NumCPU()} {
					got := runScript(t, tgt, dt, w, false)
					diff(t, fmt.Sprintf("%v/%v/kernels/workers=%d", tgt, dt, w), ref, got)
				}
			})
		}
	}
}

// TestWorkersResolve pins the knob semantics: 0 resolves to NumCPU (>= 1),
// explicit counts are honored.
func TestWorkersResolve(t *testing.T) {
	d, err := device.New(device.Config{Target: device.TargetFulcrum, Module: dram.DDR4(1), Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.Workers() < 1 {
		t.Errorf("auto workers resolved to %d", d.Workers())
	}
	d, err = device.New(device.Config{Target: device.TargetFulcrum, Module: dram.DDR4(1), Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Workers() != 5 {
		t.Errorf("Workers = %d, want 5", d.Workers())
	}
}
