// Vectorsearch: nearest-neighbor search over a resident corpus of 2-D
// points with Manhattan distance, the distance kernel of the suite's KNN
// benchmark: PIM computes every distance in parallel (sub/abs/add), the
// host selects the minimum — batched over several queries to amortize the
// corpus upload.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimeval/pim"
)

const (
	corpus  = 1 << 17
	queries = 8
)

func main() {
	dev, err := pim.NewDevice(pim.Config{Target: pim.BankLevel, Ranks: 8, Functional: true})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	xs := make([]int32, corpus)
	ys := make([]int32, corpus)
	for i := range xs {
		xs[i], ys[i] = rng.Int31n(1_000_000), rng.Int31n(1_000_000)
	}

	objX, err := dev.Alloc(corpus, pim.Int32)
	must(err)
	objY, err := dev.AllocAssociated(objX)
	must(err)
	dx, err := dev.AllocAssociated(objX)
	must(err)
	dy, err := dev.AllocAssociated(objX)
	must(err)
	must(pim.CopyToDevice(dev, objX, xs))
	must(pim.CopyToDevice(dev, objY, ys))

	dist := make([]int32, corpus)
	for q := 0; q < queries; q++ {
		qx, qy := rng.Int31n(1_000_000), rng.Int31n(1_000_000)
		// PIM: |x - qx| + |y - qy| across the whole corpus.
		must(dev.SubScalar(objX, int64(qx), dx))
		must(dev.Abs(dx, dx))
		must(dev.SubScalar(objY, int64(qy), dy))
		must(dev.Abs(dy, dy))
		must(dev.Add(dx, dy, dx))
		must(pim.CopyFromDevice(dev, dx, dist))

		// Host: select the minimum.
		best := 0
		for i, d := range dist {
			if d < dist[best] {
				best = i
			}
		}
		// Verify against a direct host scan.
		wantBest, wantD := 0, int64(1)<<62
		for i := range xs {
			d := abs64(int64(xs[i])-int64(qx)) + abs64(int64(ys[i])-int64(qy))
			if d < wantD {
				wantBest, wantD = i, d
			}
		}
		if best != wantBest {
			log.Fatalf("query %d: got %d, want %d", q, best, wantBest)
		}
		fmt.Printf("query (%7d,%7d) -> nearest #%6d at (%7d,%7d), distance %d\n",
			qx, qy, best, xs[best], ys[best], dist[best])
	}
	m := dev.Metrics()
	fmt.Printf("\n%d queries over %d points: kernel %.6f ms, copies %.6f ms\n",
		queries, corpus, m.KernelMS, m.CopyMS)
	fmt.Println("All queries verified against host scans.")
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
