// Streamanalytics: a running-total dashboard over a metric stream, built
// from the scan and filter primitives: PIM computes the inclusive prefix
// sum of per-interval request counts (Kogge-Stone via ranged
// device-to-device shifts), flags intervals whose load exceeds a
// threshold, and reduces the flagged intervals — showcasing
// CopyDeviceToDeviceRange, Broadcast, comparisons, and reductions from the
// public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimeval/pim"
)

const (
	intervals = 1 << 15
	threshold = 900
)

func main() {
	dev, err := pim.NewDevice(pim.Config{Target: pim.BitSerial, Ranks: 4, Functional: true})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	counts := make([]int32, intervals)
	for i := range counts {
		counts[i] = rng.Int31n(100)
		if i%977 == 0 { // planted load spikes
			counts[i] += 5000
		}
	}

	objC, err := dev.Alloc(intervals, pim.Int32)
	must(err)
	shifted, err := dev.AllocAssociated(objC)
	must(err)
	running, err := dev.AllocAssociated(objC)
	must(err)
	mask, err := dev.AllocAssociated(objC)
	must(err)
	must(pim.CopyToDevice(dev, objC, counts))

	// Inclusive prefix sum (Kogge-Stone): running[i] = sum(counts[0..i]).
	must(dev.CopyDeviceToDevice(objC, running))
	for d := int64(1); d < intervals; d <<= 1 {
		must(dev.Broadcast(shifted, 0))
		must(dev.CopyDeviceToDeviceRange(running, 0, shifted, d, intervals-d))
		must(dev.Add(running, shifted, running))
	}

	// Flag the load spikes and count + sum them in memory.
	must(dev.GtScalar(objC, threshold, mask))
	spikes, err := dev.RedSum(mask)
	must(err)
	zero, err := dev.AllocAssociated(objC)
	must(err)
	must(dev.Broadcast(zero, 0))
	sel, err := dev.AllocAssociated(objC)
	must(err)
	must(dev.Select(mask, objC, zero, sel))
	spikeLoad, err := dev.RedSum(sel)
	must(err)

	// Verify against a host pass.
	totals := make([]int32, intervals)
	must(pim.CopyFromDevice(dev, running, totals))
	var acc int32
	var wantSpikes, wantLoad int64
	for i, c := range counts {
		acc += c
		if totals[i] != acc {
			log.Fatalf("prefix sum diverges at %d: %d vs %d", i, totals[i], acc)
		}
		if c > threshold {
			wantSpikes++
			wantLoad += int64(c)
		}
	}
	if spikes != wantSpikes || spikeLoad != wantLoad {
		log.Fatalf("spike stats: got %d/%d, want %d/%d", spikes, spikeLoad, wantSpikes, wantLoad)
	}

	m := dev.Metrics()
	fmt.Printf("%d intervals scanned; total load %d\n", intervals, totals[intervals-1])
	fmt.Printf("load spikes: %d intervals carrying %d requests (%.1f%% of traffic)\n",
		spikes, spikeLoad, 100*float64(spikeLoad)/float64(totals[intervals-1]))
	fmt.Printf("PIM kernel %.6f ms, data movement %.6f ms (%d B d2d)\n",
		m.KernelMS, m.CopyMS, m.DeviceToDeviceBytes)
	fmt.Println("Prefix sums and spike stats verified against host.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
