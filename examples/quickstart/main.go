// Quickstart: the paper's Listing 1 AXPY program (y = a*x + y) written
// against the Go PIM API, run on all three simulated architectures to show
// the suite's portability claim: the same program, unmodified, targets
// bit-serial, Fulcrum, and bank-level PIM.
package main

import (
	"fmt"
	"log"

	"pimeval/pim"
)

func axpy(dev *pim.Device, a int64, xs, ys []int32) error {
	n := int64(len(xs))
	objX, err := dev.Alloc(n, pim.Int32)
	if err != nil {
		return err
	}
	objY, err := dev.AllocAssociated(objX)
	if err != nil {
		return err
	}
	if err := pim.CopyToDevice(dev, objX, xs); err != nil {
		return err
	}
	if err := pim.CopyToDevice(dev, objY, ys); err != nil {
		return err
	}
	if err := dev.ScaledAdd(objX, objY, objY, a); err != nil {
		return err
	}
	if err := pim.CopyFromDevice(dev, objY, ys); err != nil {
		return err
	}
	if err := dev.Free(objX); err != nil {
		return err
	}
	return dev.Free(objY)
}

func main() {
	const n = 1 << 16
	const a = 5
	for _, target := range pim.AllTargets {
		dev, err := pim.NewDevice(pim.Config{Target: target, Ranks: 4, Functional: true})
		if err != nil {
			log.Fatal(err)
		}
		xs := make([]int32, n)
		ys := make([]int32, n)
		for i := range xs {
			xs[i], ys[i] = int32(i), int32(2*i)
		}
		if err := axpy(dev, a, xs, ys); err != nil {
			log.Fatal(err)
		}
		// Spot-check: y[i] = 5*i + 2*i = 7*i.
		for i := 0; i < n; i += n / 4 {
			if ys[i] != int32(7*i) {
				log.Fatalf("%v: y[%d] = %d, want %d", target, i, ys[i], 7*i)
			}
		}
		m := dev.Metrics()
		fmt.Printf("%-10v  kernel %.6f ms  copy %.6f ms  energy %.6f mJ  (%d cores)\n",
			target, m.KernelMS, m.CopyMS, m.TotalMJ(), dev.Cores())
	}
	fmt.Println("AXPY verified on all three architectures.")
}
