// Database: an analytics scan on PIM — filter a resident column by a
// predicate, fetch the match bitmap, gather the selected rows on the host,
// and aggregate them with a PIM reduction. This mirrors the paper's
// filter-by-key workload plus a downstream aggregate: the data-heavy scan
// stays in memory; only the 1-byte-per-row bitmap and the selected rows
// cross the interface.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimeval/pim"
)

const (
	rows      = 1 << 18
	threshold = 500 // select orders under $5.00
)

func main() {
	dev, err := pim.NewDevice(pim.Config{Target: pim.Fulcrum, Ranks: 8, Functional: true})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	prices := make([]int32, rows) // cents
	amounts := make([]int32, rows)
	for i := range prices {
		prices[i] = rng.Int31n(100_000)
		amounts[i] = 1 + rng.Int31n(9)
	}

	// The price column is resident in the PIM module.
	priceCol, err := dev.Alloc(rows, pim.Int32)
	must(err)
	must(pim.CopyToDevice(dev, priceCol, prices))

	// PIM scan: one command builds the byte bitmap.
	bitmap, err := dev.AllocAssociatedTyped(priceCol, pim.Int8)
	must(err)
	must(dev.LtScalar(priceCol, threshold, bitmap))

	// Host gathers the matching row indices from the fetched bitmap.
	bits := make([]int8, rows)
	must(pim.CopyFromDevice(dev, bitmap, bits))
	var matchedAmounts []int32
	for i, b := range bits {
		if b != 0 {
			matchedAmounts = append(matchedAmounts, amounts[i])
		}
	}

	// Aggregate the selected rows back on PIM.
	sum := int64(0)
	if len(matchedAmounts) > 0 {
		sel, err := dev.Alloc(int64(len(matchedAmounts)), pim.Int32)
		must(err)
		must(pim.CopyToDevice(dev, sel, matchedAmounts))
		sum, err = dev.RedSum(sel)
		must(err)
		must(dev.Free(sel))
	}

	// Verify against a host-only pass.
	var wantCount int
	var wantSum int64
	for i := range prices {
		if prices[i] < threshold {
			wantCount++
			wantSum += int64(amounts[i])
		}
	}
	if len(matchedAmounts) != wantCount || sum != wantSum {
		log.Fatalf("mismatch: got %d rows / %d units, want %d / %d",
			len(matchedAmounts), sum, wantCount, wantSum)
	}

	m := dev.Metrics()
	fmt.Printf("SELECT SUM(amount) WHERE price < %d:\n", threshold)
	fmt.Printf("  matched rows : %d of %d (%.2f%%)\n", wantCount, rows, 100*float64(wantCount)/rows)
	fmt.Printf("  total units  : %d\n", sum)
	fmt.Printf("  PIM kernel   : %.6f ms, transfers %.6f ms (%d B out)\n",
		m.KernelMS, m.CopyMS, m.DeviceToHostBytes)
	fmt.Println("Verified against host scan.")
	must(dev.Free(priceCol))
	must(dev.Free(bitmap))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
