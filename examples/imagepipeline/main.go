// Imagepipeline: a three-stage image-processing pipeline on PIM —
// brightness adjustment, 2x2 box downsampling, and a per-channel histogram
// — the three image workloads of the PIMbench suite chained on one device,
// with the intermediate image staying on the host between stages (the
// paper's kernel-decomposition execution style).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pimeval/pim"
)

const (
	width      = 128
	height     = 96
	brightness = 35
)

func main() {
	dev, err := pim.NewDevice(pim.Config{Target: pim.BitSerial, Ranks: 4, Functional: true})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	channel := make([]int16, width*height)
	for i := range channel {
		channel[i] = int16(rng.Intn(256))
	}

	// Stage 1: saturating brightness on the full channel.
	img, err := dev.Alloc(int64(len(channel)), pim.Int16)
	must(err)
	must(pim.CopyToDevice(dev, img, channel))
	must(dev.AddScalar(img, brightness, img))
	must(dev.MinScalar(img, 255, img))
	must(dev.MaxScalar(img, 0, img))
	must(pim.CopyFromDevice(dev, img, channel))
	must(dev.Free(img))

	// Stage 2: 2x2 box downsampling via four phase vectors.
	ow, oh := width/2, height/2
	phases := make([]pim.ObjID, 4)
	for p := range phases {
		phases[p], err = dev.Alloc(int64(ow*oh), pim.Int16)
		must(err)
		vals := make([]int16, ow*oh)
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				sy, sx := 2*y+p/2, 2*x+p%2
				vals[y*ow+x] = channel[sy*width+sx]
			}
		}
		must(pim.CopyToDevice(dev, phases[p], vals))
	}
	for p := 1; p < 4; p++ {
		must(dev.Add(phases[0], phases[p], phases[0]))
	}
	must(dev.ShiftR(phases[0], 2, phases[0]))
	small := make([]int16, ow*oh)
	must(pim.CopyFromDevice(dev, phases[0], small))
	for _, p := range phases {
		must(dev.Free(p))
	}

	// Stage 3: histogram of the downsampled channel (coarse 8-bucket view).
	hobj, err := dev.Alloc(int64(len(small)), pim.Int16)
	must(err)
	mask, err := dev.AllocAssociated(hobj)
	must(err)
	must(pim.CopyToDevice(dev, hobj, small))
	fmt.Println("Brightness-adjusted, downsampled histogram:")
	for bucket := 0; bucket < 8; bucket++ {
		lo, hi := int64(bucket*32), int64(bucket*32+31)
		must(dev.GtScalar(hobj, lo-1, mask))
		above, err := dev.RedSum(mask)
		must(err)
		must(dev.GtScalar(hobj, hi, mask))
		aboveHi, err := dev.RedSum(mask)
		must(err)
		count := above - aboveHi
		fmt.Printf("  [%3d-%3d] %5d %s\n", lo, hi, count, bar(count, len(small)))
	}
	must(dev.Free(hobj))
	must(dev.Free(mask))

	m := dev.Metrics()
	fmt.Printf("\nPipeline totals: kernel %.6f ms, copies %.6f ms, energy %.6f mJ\n",
		m.KernelMS, m.CopyMS, m.TotalMJ())
}

func bar(count int64, total int) string {
	n := int(count * 40 / int64(total))
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
