package pimeval

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (see DESIGN.md §6 for the experiment index). Each
// benchmark regenerates its artifact end-to-end — workload, parameter
// sweep, baselines — and reports the headline numbers as custom metrics so
// `go test -bench=. -benchmem` reproduces the evaluation in one command.

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"pimeval/benchmarks/suite"
	"pimeval/internal/analog"
	"pimeval/internal/bitserial"
	"pimeval/internal/experiments"
	"pimeval/internal/isa"
	"pimeval/pim"
)

// suiteResults caches the main 32-rank suite run across benchmarks within
// one bench binary invocation.
var suiteResults map[pim.Target][]suite.Result

func mainSuite(b *testing.B) map[pim.Target][]suite.Result {
	b.Helper()
	if suiteResults == nil {
		rs, err := experiments.SuiteAllTargets(32)
		if err != nil {
			b.Fatal(err)
		}
		suiteResults = rs
	}
	return suiteResults
}

func gmeanOf(rs []suite.Result, f func(suite.Result) float64) float64 {
	var sum float64
	var n int
	for _, r := range rs {
		if v := f(r); v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

func BenchmarkTable1Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !strings.Contains(experiments.Table1(), "vecadd") {
			b.Fatal("suite listing incomplete")
		}
	}
}

func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !strings.Contains(experiments.Table2(), "Fulcrum") {
			b.Fatal("config listing incomplete")
		}
	}
}

func BenchmarkFig1Dendrogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(s, "vecadd") {
			b.Fatal("dendrogram missing leaves")
		}
	}
}

func BenchmarkFig6Cols(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig6Cols()
		if err != nil {
			b.Fatal(err)
		}
		// Headline: bit-serial add latency halves when columns double.
		var c1024, c8192 float64
		for _, p := range pts {
			if p.Target == pim.BitSerial && p.Op == "Add" {
				switch p.Param {
				case 1024:
					c1024 = p.LatencyMS
				case 8192:
					c8192 = p.LatencyMS
				}
			}
		}
		b.ReportMetric(c1024/c8192, "bitserial-add-colscaling")
	}
}

func BenchmarkFig6Banks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig6Banks()
		if err != nil {
			b.Fatal(err)
		}
		var b16, b128 float64
		for _, p := range pts {
			if p.Target == pim.Fulcrum && p.Op == "Add" {
				switch p.Param {
				case 16:
					b16 = p.LatencyMS
				case 128:
					b128 = p.LatencyMS
				}
			}
		}
		b.ReportMetric(b16/b128, "fulcrum-add-bankscaling")
	}
}

func BenchmarkFig7Breakdown(b *testing.B) {
	rs := mainSuite(b)
	for i := 0; i < b.N; i++ {
		if !strings.Contains(experiments.Fig7(rs), "radixsort") {
			b.Fatal("breakdown incomplete")
		}
	}
}

func BenchmarkFig8OpMix(b *testing.B) {
	rs := mainSuite(b)
	for i := 0; i < b.N; i++ {
		if !strings.Contains(experiments.Fig8(rs[pim.BitSerial]), "popcount") {
			b.Fatal("op mix incomplete")
		}
	}
}

func BenchmarkFig9SpeedupCPU(b *testing.B) {
	rs := mainSuite(b)
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig9(rs)
	}
	for _, tgt := range pim.AllTargets {
		g := gmeanOf(rs[tgt], func(r suite.Result) float64 { w, _ := r.SpeedupCPU(); return w })
		b.ReportMetric(g, tgt.String()+"-gmean-speedup-cpu")
	}
}

func BenchmarkFig10aSpeedupGPU(b *testing.B) {
	rs := mainSuite(b)
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig10a(rs)
	}
	for _, tgt := range pim.AllTargets {
		b.ReportMetric(gmeanOf(rs[tgt], suite.Result.SpeedupGPU), tgt.String()+"-gmean-speedup-gpu")
	}
}

func BenchmarkFig10bEnergyGPU(b *testing.B) {
	rs := mainSuite(b)
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig10b(rs)
	}
	for _, tgt := range pim.AllTargets {
		b.ReportMetric(gmeanOf(rs[tgt], suite.Result.EnergyReductionGPU), tgt.String()+"-gmean-energy-gpu")
	}
}

func BenchmarkFig11EnergyCPU(b *testing.B) {
	rs := mainSuite(b)
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig11(rs)
	}
	for _, tgt := range pim.AllTargets {
		b.ReportMetric(gmeanOf(rs[tgt], suite.Result.EnergyReductionCPU), tgt.String()+"-gmean-energy-cpu")
	}
}

func BenchmarkFig12RankScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(s, "Rank=32") {
			b.Fatal("rank scaling incomplete")
		}
	}
}

func BenchmarkFig13RankCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(s, "vecadd") {
			b.Fatal("rank capacity comparison incomplete")
		}
	}
}

func BenchmarkValidationFulcrum(b *testing.B) {
	var rows []experiments.ValidationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ValidateFulcrum()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Ratio(), "ratio-"+r.Kernel)
	}
}

// BenchmarkSuitePerApp times one model-scale run of every benchmark on
// every architecture — the per-cell cost behind Figures 7-11.
func BenchmarkSuitePerApp(b *testing.B) {
	for _, bench := range suite.All() {
		for _, tgt := range pim.AllTargets {
			bench, tgt := bench, tgt
			b.Run(bench.Info().Name+"/"+tgt.String(), func(b *testing.B) {
				var last suite.Result
				for i := 0; i < b.N; i++ {
					var err error
					last, err = bench.Run(suite.Config{Target: tgt, Ranks: 32})
					if err != nil {
						b.Fatal(err)
					}
				}
				w, _ := last.SpeedupCPU()
				b.ReportMetric(w, "speedup-cpu")
				b.ReportMetric(last.Metrics.KernelMS, "modeled-kernel-ms")
			})
		}
	}
}

// BenchmarkMicroprogramCompile measures the two microprogram compilers —
// the library's own hot path when cost caches are cold.
func BenchmarkMicroprogramCompile(b *testing.B) {
	b.Run("digital-mul-int32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bitserial.Build(isa.OpMul, isa.Int32, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("digital-div-int32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bitserial.Build(isa.OpDiv, isa.Int32, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("analog-add-int32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analog.Build(isa.OpAdd, isa.Int32, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMicroOpInterpreter measures the gate-level functional engine on
// a full-width row batch (8192 lanes), the verification hot path.
func BenchmarkMicroOpInterpreter(b *testing.B) {
	p, err := bitserial.Build(isa.OpAdd, isa.Int32, 0)
	if err != nil {
		b.Fatal(err)
	}
	e := bitserial.NewEngine(p.Rows, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(p, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(p.Rows) * 8192 / 8)
}

// BenchmarkExtensionsKernels runs the paper's future-work kernels (prefix
// sum, string match, transitive closure, PCA) at full scale.
func BenchmarkExtensionsKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.ExtensionsTable()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(s, "prefixsum") {
			b.Fatal("extensions table incomplete")
		}
	}
}

// BenchmarkFutureWorkHBM runs the DDR4-vs-HBM2 technology comparison
// (paper Section IX: conclusions "might change with HBM").
func BenchmarkFutureWorkHBM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.HBMTable()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(s, "HBM2") {
			b.Fatal("HBM table incomplete")
		}
	}
}

// BenchmarkAblationAnalogBitSerial quantifies the digital-vs-analog
// bit-serial argument of Section IV.
func BenchmarkAblationAnalogBitSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.AnalogTable()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(s, "Analog/Digital") {
			b.Fatal("analog table incomplete")
		}
	}
}

// BenchmarkParallelScaling measures the functional execution engine's
// worker-pool scaling on large data-carrying kernels: an element-wise
// vecadd and a gemv-style Mul+RedSumSeg, each over 4M int32 elements on
// Fulcrum. Results are bit-identical across worker counts (see
// internal/device/paralleltest); only wall-clock time changes. Speedup is
// bounded by runtime.NumCPU() on the host running the benchmark.
func BenchmarkParallelScaling(b *testing.B) {
	const n = 1 << 22 // 4M elements
	const segLen = 1 << 10
	counts := []int{1, 2, 4}
	if ncpu := runtime.NumCPU(); ncpu > counts[len(counts)-1] {
		counts = append(counts, ncpu)
	}
	host := make([]int32, n)
	for i := range host {
		host[i] = int32(i*2654435761 + 12345)
	}
	setup := func(b *testing.B, workers int) (*pim.Device, pim.ObjID, pim.ObjID, pim.ObjID) {
		b.Helper()
		v, err := pim.NewDevice(pim.Config{
			Target: pim.Fulcrum, Ranks: 32, Functional: true, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		alloc := func() pim.ObjID {
			id, err := v.Alloc(n, pim.Int32)
			if err != nil {
				b.Fatal(err)
			}
			return id
		}
		a, c, dst := alloc(), alloc(), alloc()
		if err := pim.CopyToDevice(v, a, host); err != nil {
			b.Fatal(err)
		}
		if err := pim.CopyToDevice(v, c, host); err != nil {
			b.Fatal(err)
		}
		return v, a, c, dst
	}
	for _, w := range counts {
		w := w
		b.Run(fmt.Sprintf("vecadd/workers=%d", w), func(b *testing.B) {
			v, a, c, dst := setup(b, w)
			b.SetBytes(3 * n * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := v.Add(a, c, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("gemv/workers=%d", w), func(b *testing.B) {
			v, a, c, dst := setup(b, w)
			b.SetBytes(3 * n * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := v.Mul(a, c, dst); err != nil {
					b.Fatal(err)
				}
				if _, err := v.RedSumSeg(dst, segLen); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDispatch measures the per-command front-end overhead of the
// dispatch path — validation, lowering, cost modeling, and sink fan-out —
// on commands whose element count is too small for the functional loop to
// matter. This is the regression guard for the staged pipeline: its numbers
// are compared against the seed (pre-pipeline) dispatch path in
// EXPERIMENTS.md and must stay within 5%.
func BenchmarkDispatch(b *testing.B) {
	for _, fn := range []bool{true, false} {
		fn := fn
		mode := "functional"
		if !fn {
			mode = "model-only"
		}
		b.Run(mode, func(b *testing.B) {
			v, err := pim.NewDevice(pim.Config{
				Target: pim.Fulcrum, Ranks: 1, Functional: fn, Workers: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			const n = 8 // small-N: dispatch overhead dominates the element loop
			alloc := func() pim.ObjID {
				id, err := v.Alloc(n, pim.Int32)
				if err != nil {
					b.Fatal(err)
				}
				return id
			}
			a, c, dst := alloc(), alloc(), alloc()
			if fn {
				host := make([]int32, n)
				if err := pim.CopyToDevice(v, a, host); err != nil {
					b.Fatal(err)
				}
				if err := pim.CopyToDevice(v, c, host); err != nil {
					b.Fatal(err)
				}
			}
			b.Run("binary", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := v.Add(a, c, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("scalar", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := v.AddScalar(a, 3, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("redsum", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := v.RedSum(a); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkAblationAESSbox compares the two AES S-box realizations: the
// bitsliced pimAesSbox command versus the explicit GF(2^8) inversion ladder
// built from generic PIM ops (the design choice DESIGN.md calls out).
func BenchmarkAblationAESSbox(b *testing.B) {
	bench, err := suite.ByName("aes-enc")
	if err != nil {
		b.Fatal(err)
	}
	var cmdMS float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(suite.Config{Target: pim.BitSerial, Ranks: 32})
		if err != nil {
			b.Fatal(err)
		}
		cmdMS = res.Metrics.KernelMS
	}
	b.ReportMetric(cmdMS, "sbox-command-kernel-ms")
}
